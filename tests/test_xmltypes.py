"""Tests for content models, DTD parsing, binarisation and type membership."""

import pytest

from repro.core.errors import ParseError
from repro.trees.unranked import parse_tree
from repro.xmltypes import content as cm
from repro.xmltypes.ast import BinaryTypeGrammar, EPSILON, LabelAlternative
from repro.xmltypes.binarize import binarize_dtd
from repro.xmltypes.dtd import parse_dtd
from repro.xmltypes.membership import dtd_accepts, grammar_accepts

WIKI_DTD = """
<!ELEMENT article (meta, (text | redirect))>
<!ELEMENT meta (title, status?, interwiki*, history?)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT interwiki (#PCDATA)>
<!ELEMENT status (#PCDATA)>
<!ELEMENT history (edit)+>
<!ELEMENT edit (status?, interwiki*, (text | redirect)?)>
<!ELEMENT redirect EMPTY>
<!ELEMENT text (#PCDATA)>
"""


# -- content models -----------------------------------------------------------------


def test_content_nullable():
    assert cm.nullable(cm.CEmpty())
    assert not cm.nullable(cm.CSymbol("a"))
    assert cm.nullable(cm.CStar(cm.CSymbol("a")))
    assert cm.nullable(cm.COptional(cm.CSymbol("a")))
    assert not cm.nullable(cm.CPlus(cm.CSymbol("a")))
    assert cm.nullable(cm.CSeq(cm.CStar(cm.CSymbol("a")), cm.COptional(cm.CSymbol("b"))))


def test_content_matches():
    model = cm.CSeq(cm.CSymbol("a"), cm.CSeq(cm.CStar(cm.CSymbol("b")), cm.COptional(cm.CSymbol("c"))))
    assert cm.matches(model, ["a"])
    assert cm.matches(model, ["a", "b", "b", "c"])
    assert not cm.matches(model, ["b"])
    assert not cm.matches(model, ["a", "c", "b"])


def test_content_choice_and_plus():
    model = cm.CPlus(cm.CChoice(cm.CSymbol("x"), cm.CSymbol("y")))
    assert cm.matches(model, ["x", "y", "x"])
    assert not cm.matches(model, [])


def test_content_symbols():
    model = cm.CSeq(cm.CSymbol("a"), cm.CChoice(cm.CSymbol("b"), cm.CEmpty()))
    assert cm.symbols(model) == {"a", "b"}


# -- DTD parsing ---------------------------------------------------------------------


def test_parse_wikipedia_dtd():
    dtd = parse_dtd(WIKI_DTD, root="article")
    assert dtd.symbol_count() == 9
    assert dtd.root == "article"
    assert cm.nullable(dtd.content_of("text"))
    assert not cm.nullable(dtd.content_of("article"))


def test_parse_dtd_with_parameter_entities():
    text = """
    <!ENTITY % inline "a | b">
    <!ELEMENT p (#PCDATA | %inline;)*>
    <!ELEMENT a EMPTY>
    <!ELEMENT b EMPTY>
    """
    dtd = parse_dtd(text, root="p")
    assert cm.symbols(dtd.content_of("p")) == {"a", "b"}


def test_parse_dtd_with_any_content():
    dtd = parse_dtd("<!ELEMENT a ANY><!ELEMENT b EMPTY>", root="a")
    assert cm.symbols(dtd.content_of("a")) == {"a", "b"}


def test_parse_dtd_ignores_attlist_and_comments():
    text = """
    <!-- a comment with <!ELEMENT fake (ignored)> inside -->
    <!ELEMENT a (b)>
    <!ATTLIST a id CDATA #IMPLIED>
    <!ELEMENT b EMPTY>
    """
    dtd = parse_dtd(text, root="a")
    assert dtd.symbol_count() == 2


def test_parse_dtd_errors():
    with pytest.raises(ParseError):
        parse_dtd("<!ATTLIST a id CDATA #IMPLIED>")
    with pytest.raises(ParseError):
        parse_dtd("<!ELEMENT a (b,)><!ELEMENT b EMPTY>")
    with pytest.raises(ParseError):
        parse_dtd("<!ELEMENT a (b)>", root="zzz")


def test_with_root_changes_designated_root():
    dtd = parse_dtd(WIKI_DTD, root="article")
    assert dtd.with_root("meta").root == "meta"
    with pytest.raises(ValueError):
        dtd.with_root("nope")


# -- binarisation -----------------------------------------------------------------------


def test_binarize_produces_figure13_like_grammar():
    dtd = parse_dtd(WIKI_DTD, root="article")
    grammar = binarize_dtd(dtd)
    assert grammar.start.startswith("Doc_")
    start_alternatives = grammar.alternatives(grammar.start)
    assert len(start_alternatives) == 1
    assert isinstance(start_alternatives[0], LabelAlternative)
    assert start_alternatives[0].label == "article"
    assert grammar.labels() == {
        "article", "meta", "title", "interwiki", "status", "history", "edit",
        "redirect", "text",
    }


def test_binarize_nullability():
    dtd = parse_dtd(WIKI_DTD, root="article")
    grammar = binarize_dtd(dtd)
    assert grammar.is_epsilon_only("C_title")
    assert grammar.is_nullable("C_edit")
    assert not grammar.is_nullable("C_article")


@pytest.mark.parametrize(
    "spec,word",
    [
        ("((b)*)*", ["b"]),
        ("((b)*)*", []),
        ("((b)+)*", ["b"]),
        ("((b)+)+", ["b", "b"]),
        ("(c, (b)?)*", ["c"]),
        ("(c, (b)?)*", ["c", "b", "c"]),
        ("((b | (c)*))*", ["c", "b"]),
    ],
)
def test_binarize_nested_nullable_constructs(spec, word):
    """Nested stars/options must keep their loop exits.

    A nullable construct inlines its continuation's alternatives; while an
    enclosing loop variable was still being defined that inline used to read
    an empty placeholder, so ``(b*)*`` compiled to a sibling chain that could
    never terminate and rejected every non-empty valid document.  Found by
    differential fuzzing (tests/corpus/fuzz-containment-0044cc20ad80.json).
    """
    from repro.trees.unranked import Tree
    from repro.xmltypes.membership import dtd_accepts, grammar_accepts

    dtd = parse_dtd(
        f"<!ELEMENT a {spec}><!ELEMENT b EMPTY><!ELEMENT c EMPTY>", root="a"
    )
    document = Tree("a", tuple(Tree(name) for name in word))
    assert dtd_accepts(dtd, document)
    assert grammar_accepts(binarize_dtd(dtd), document)


def test_grammar_reachability_and_describe():
    dtd = parse_dtd(WIKI_DTD, root="article")
    grammar = binarize_dtd(dtd).restricted_to_reachable()
    assert grammar.variable_count() > 5
    description = grammar.describe()
    assert "Start Symbol" in description and "terminals" in description


# -- membership (validation) ---------------------------------------------------------------


VALID_DOCS = [
    "<article><meta><title/></meta><text/></article>",
    "<article><meta><title/><status/><interwiki/><interwiki/></meta><redirect/></article>",
    "<article><meta><title/><history><edit><text/></edit><edit/></history></meta><text/></article>",
]

INVALID_DOCS = [
    "<article><text/></article>",                       # missing meta
    "<article><meta><title/></meta></article>",         # missing text|redirect
    "<article><meta/><text/></article>",                 # meta missing title
    "<meta><title/></meta>",                             # wrong root
    "<article><meta><title/></meta><text/><text/></article>",  # too many children
]


@pytest.mark.parametrize("text", VALID_DOCS)
def test_valid_documents_accepted(text):
    dtd = parse_dtd(WIKI_DTD, root="article")
    document = parse_tree(text)
    assert dtd_accepts(dtd, document)
    assert grammar_accepts(binarize_dtd(dtd), document)


@pytest.mark.parametrize("text", INVALID_DOCS)
def test_invalid_documents_rejected(text):
    dtd = parse_dtd(WIKI_DTD, root="article")
    document = parse_tree(text)
    assert not dtd_accepts(dtd, document)
    assert not grammar_accepts(binarize_dtd(dtd), document)


def test_grammar_accepts_ignores_marks():
    dtd = parse_dtd(WIKI_DTD, root="article")
    document = parse_tree("<article><meta><title!/></meta><text/></article>")
    assert grammar_accepts(binarize_dtd(dtd), document)


def test_empty_grammar_variable():
    grammar = BinaryTypeGrammar(variables={"X": ()}, start="X")
    assert grammar.is_empty("X")
    assert not grammar_accepts(grammar, parse_tree("<a/>"))
    assert grammar.alternatives("Epsilon") == (EPSILON,)
