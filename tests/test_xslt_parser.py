"""Tests for the XSLT stylesheet parser (:mod:`repro.xslt.parser`)."""

import textwrap

import pytest

from repro.xslt.parser import StylesheetError, load_stylesheet

HEADER = '<?xml version="1.0"?>\n'
OPEN = '<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">\n'
CLOSE = "</xsl:stylesheet>\n"


def write(tmp_path, name, body):
    path = tmp_path / name
    path.write_text(HEADER + OPEN + textwrap.dedent(body) + CLOSE, encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Templates: attributes and provenance
# ---------------------------------------------------------------------------


def test_template_attributes_and_positions(tmp_path):
    path = write(
        tmp_path,
        "sheet.xsl",
        """\
        <xsl:template match="a/b" mode="toc" priority="1.5">
          <xsl:value-of select="c"/>
        </xsl:template>
        <xsl:template name="helper"/>
        """,
    )
    sheet = load_stylesheet(path)
    assert sheet.path == str(path)
    assert sheet.files == (str(path),)
    matched, named = sheet.templates
    assert matched.match == "a/b"
    assert matched.mode == "toc"
    assert matched.priority == 1.5
    assert matched.file == str(path)
    assert matched.line == 3  # after the declaration and stylesheet lines
    assert matched.column == 1
    assert named.match is None and named.name == "helper"
    assert named.priority is None


def test_expressions_record_role_source_and_position(tmp_path):
    path = write(
        tmp_path,
        "sheet.xsl",
        """\
        <xsl:template match="a">
          <xsl:apply-templates select="b"/>
          <xsl:if test="c">x</xsl:if>
        </xsl:template>
        """,
    )
    (template,) = load_stylesheet(path).templates
    select, test = template.expressions
    assert (select.role, select.source, select.text) == (
        "select",
        "xsl:apply-templates",
        "b",
    )
    assert (test.role, test.source, test.text) == ("test", "xsl:if", "c")
    assert select.line == 4 and select.column == 3
    assert [e.index for e in template.expressions] == [0, 1]


def test_apply_templates_without_select_records_nothing(tmp_path):
    path = write(
        tmp_path,
        "sheet.xsl",
        """\
        <xsl:template match="a">
          <xsl:apply-templates/>
        </xsl:template>
        """,
    )
    (template,) = load_stylesheet(path).templates
    assert template.expressions == ()


# ---------------------------------------------------------------------------
# Nesting: ancestors and the context chain
# ---------------------------------------------------------------------------


def test_for_each_scopes_build_the_context_chain(tmp_path):
    path = write(
        tmp_path,
        "sheet.xsl",
        """\
        <xsl:template match="a">
          <xsl:for-each select="b">
            <xsl:if test="c">
              <xsl:value-of select="d"/>
            </xsl:if>
          </xsl:for-each>
        </xsl:template>
        """,
    )
    (template,) = load_stylesheet(path).templates
    for_each, test, value_of = template.expressions
    # The for-each select is evaluated before its scope opens.
    assert for_each.ancestors == () and for_each.context_chain == ()
    # The test sits inside the for-each scope...
    assert test.ancestors == (for_each.index,)
    assert test.context_chain == (for_each.index,)
    # ...and the value-of inside both, but only for-each moves the context.
    assert value_of.ancestors == (for_each.index, test.index)
    assert value_of.context_chain == (for_each.index,)


def test_nested_for_each_chain_is_innermost_last(tmp_path):
    path = write(
        tmp_path,
        "sheet.xsl",
        """\
        <xsl:template match="a">
          <xsl:for-each select="b">
            <xsl:for-each select="c">
              <xsl:value-of select="d"/>
            </xsl:for-each>
          </xsl:for-each>
        </xsl:template>
        """,
    )
    (template,) = load_stylesheet(path).templates
    outer, inner, value_of = template.expressions
    assert inner.context_chain == (outer.index,)
    assert value_of.context_chain == (outer.index, inner.index)


# ---------------------------------------------------------------------------
# Imports and includes
# ---------------------------------------------------------------------------


def test_import_precedence_and_include_expansion(tmp_path):
    write(tmp_path, "base.xsl", '<xsl:template match="base">b</xsl:template>\n')
    write(tmp_path, "inc.xsl", '<xsl:template match="inc">i</xsl:template>\n')
    main = write(
        tmp_path,
        "main.xsl",
        """\
        <xsl:import href="base.xsl"/>
        <xsl:include href="inc.xsl"/>
        <xsl:template match="main">m</xsl:template>
        """,
    )
    sheet = load_stylesheet(main)
    by_match = {t.match: t for t in sheet.templates}
    # Imported templates come first (post-order) at lower precedence.
    assert [t.match for t in sheet.templates] == ["base", "inc", "main"]
    assert by_match["base"].precedence < by_match["main"].precedence
    # Included templates take the including file's precedence.
    assert by_match["inc"].precedence == by_match["main"].precedence
    assert by_match["inc"].file == str(tmp_path / "inc.xsl")
    assert len(sheet.files) == 3
    # Document order is a global tiebreak across the load.
    orders = [t.order for t in sheet.templates]
    assert orders == sorted(orders)


def test_later_import_outranks_earlier(tmp_path):
    write(tmp_path, "first.xsl", '<xsl:template match="x">1</xsl:template>\n')
    write(tmp_path, "second.xsl", '<xsl:template match="x">2</xsl:template>\n')
    main = write(
        tmp_path,
        "main.xsl",
        """\
        <xsl:import href="first.xsl"/>
        <xsl:import href="second.xsl"/>
        """,
    )
    first, second = load_stylesheet(main).templates
    assert first.file.endswith("first.xsl")
    assert second.precedence > first.precedence


def test_circular_import_is_an_error(tmp_path):
    write(tmp_path, "a.xsl", '<xsl:include href="b.xsl"/>\n')
    write(tmp_path, "b.xsl", '<xsl:import href="a.xsl"/>\n')
    with pytest.raises(StylesheetError, match="circular"):
        load_stylesheet(tmp_path / "a.xsl")


def test_missing_href_target_is_an_error_with_position(tmp_path):
    main = write(tmp_path, "main.xsl", '<xsl:import href="nope.xsl"/>\n')
    with pytest.raises(StylesheetError, match="nope.xsl") as excinfo:
        load_stylesheet(main)
    assert excinfo.value.file == str(main)
    assert excinfo.value.line == 3


# ---------------------------------------------------------------------------
# Malformed stylesheets
# ---------------------------------------------------------------------------


def test_missing_stylesheet_file(tmp_path):
    with pytest.raises(StylesheetError, match="not found"):
        load_stylesheet(tmp_path / "ghost.xsl")


def test_not_well_formed_xml(tmp_path):
    path = tmp_path / "broken.xsl"
    path.write_text(HEADER + OPEN + "<oops>", encoding="utf-8")
    with pytest.raises(StylesheetError, match="not well-formed"):
        load_stylesheet(path)


def test_non_stylesheet_document_element(tmp_path):
    path = tmp_path / "plain.xsl"
    path.write_text("<html/>", encoding="utf-8")
    with pytest.raises(StylesheetError, match="xsl:stylesheet or xsl:transform"):
        load_stylesheet(path)


@pytest.mark.parametrize(
    "body, message",
    [
        ("<xsl:template>x</xsl:template>\n", "match or name"),
        ('<xsl:template match="a" priority="high"/>\n', "priority"),
        ('<xsl:import wrong="x"/>\n', "href"),
        (
            '<xsl:template match="a"><xsl:for-each>y</xsl:for-each></xsl:template>\n',
            "select",
        ),
        ('<xsl:template match="a"><xsl:if>y</xsl:if></xsl:template>\n', "test"),
    ],
)
def test_invalid_constructs_raise_targeted_errors(tmp_path, body, message):
    path = write(tmp_path, "bad.xsl", body)
    with pytest.raises(StylesheetError, match=message):
        load_stylesheet(path)
