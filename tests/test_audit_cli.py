"""Tests for ``repro audit`` and the auditor's wire-format round trips.

The wire tests are the end-to-end proof that every query kind the auditor
plans (satisfiability, emptiness, containment, coverage — all under
document-rooted schemas) is expressible in the CLI wire format: the same
queries answered through ``repro analyze --batch`` and a ``repro serve``
session must return the verdicts ``StaticAnalyzer.solve_many`` returns
in-process.
"""

import io
import json
import textwrap

import pytest

from repro.analysis.problems import Rooted
from repro.api import Query, StaticAnalyzer
from repro.cli import build_parser, main
from repro.cli.analyze import EXIT_ANALYSIS_ERROR, EXIT_OK, EXIT_USAGE
from repro.cli.serve import serve

HEADER = '<?xml version="1.0"?>\n'
OPEN = '<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">\n'
CLOSE = "</xsl:stylesheet>\n"


def write(tmp_path, body, name="sheet.xsl"):
    path = tmp_path / name
    path.write_text(HEADER + OPEN + textwrap.dedent(body) + CLOSE, encoding="utf-8")
    return path


@pytest.fixture
def seeded(tmp_path):
    return write(
        tmp_path,
        """\
        <xsl:template match="/">
          <xsl:apply-templates select="article"/>
        </xsl:template>
        <xsl:template match="article">
          <xsl:value-of select="text/title"/>
        </xsl:template>
        <xsl:template match="article/title">dead</xsl:template>
        """,
    )


@pytest.fixture
def clean(tmp_path):
    return write(
        tmp_path,
        """\
        <xsl:template match="/">
          <xsl:apply-templates select="article"/>
        </xsl:template>
        <xsl:template match="*">
          <xsl:apply-templates select="*"/>
        </xsl:template>
        """,
        name="clean.xsl",
    )


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------


def test_parser_accepts_audit_flags():
    args = build_parser().parse_args(
        ["audit", "sheet.xsl", "--schema", "xhtml-strict", "--format", "json",
         "--fail-on", "warning", "--compact", "--workers", "2"]
    )
    assert args.command == "audit"
    assert args.stylesheet == "sheet.xsl"
    assert args.schema == "xhtml-strict"
    assert args.format == "json" and args.fail_on == "warning"
    assert args.compact and args.workers == 2


def test_parser_requires_schema():
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(["audit", "sheet.xsl"])
    assert excinfo.value.code == EXIT_USAGE


# ---------------------------------------------------------------------------
# Text and JSON output, exit codes
# ---------------------------------------------------------------------------


def test_audit_text_output_and_failing_exit(seeded, capsys):
    code = main(["audit", str(seeded), "--schema", "wikipedia"])
    out = capsys.readouterr().out
    assert code == 1  # the dead template is an error
    assert "dead-template" in out
    assert f"{seeded}:" in out  # compiler-style file:line:col prefixes
    assert "in one batch" in out


def test_audit_json_output_is_stable(seeded, capsys):
    code = main(["audit", str(seeded), "--schema", "wikipedia", "--format", "json",
                 "--compact"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["schema"] == "wikipedia"
    rules = [finding["rule"] for finding in payload["findings"]]
    assert "dead-template" in rules and "dead-select" in rules
    assert payload["batch"]["queries"] == sum(payload["queries"].values())
    assert payload["cache_statistics"]["solver_runs"] >= 1


def test_audit_clean_stylesheet_exits_zero(clean, capsys):
    code = main(["audit", str(clean), "--schema", "wikipedia",
                 "--fail-on", "warning"])
    assert code == EXIT_OK
    assert "0 error(s), 0 warning(s)" in capsys.readouterr().out


def test_audit_fail_on_thresholds(seeded, capsys):
    assert main(["audit", str(seeded), "--schema", "wikipedia",
                 "--fail-on", "never"]) == EXIT_OK
    assert main(["audit", str(seeded), "--schema", "wikipedia",
                 "--fail-on", "warning"]) == 1
    capsys.readouterr()


def test_audit_usage_errors(tmp_path, capsys):
    assert main(["audit", str(tmp_path / "ghost.xsl"), "--schema", "wikipedia"]) \
        == EXIT_USAGE
    assert "not found" in capsys.readouterr().err
    sheet = write(tmp_path, '<xsl:template match="a">x</xsl:template>\n')
    assert main(["audit", str(sheet), "--schema", "no-such"]) == EXIT_USAGE
    err = capsys.readouterr().err
    assert "no-such" in err and "wikipedia" in err  # lists available schemas


# ---------------------------------------------------------------------------
# Wire round trips: the auditor's query kinds via analyze --batch and serve
# ---------------------------------------------------------------------------

#: One request per auditor rule, all under the document-rooted wikipedia
#: schema: dead-template (satisfiability), dead-select/unreachable-branch
#: (emptiness), shadowed-template (containment), coverage-gap (coverage).
WIRE_REQUESTS = [
    {"id": "dead-template", "kind": "satisfiability",
     "exprs": ["//article/title"], "types": ["rooted:wikipedia"]},
    {"id": "dead-select", "kind": "emptiness",
     "exprs": ["//article/text/title"], "types": ["rooted:wikipedia"]},
    {"id": "shadowed-template", "kind": "containment",
     "exprs": ["//history/edit", "//edit"], "types": ["rooted:wikipedia"]},
    {"id": "coverage-gap", "kind": "coverage",
     "exprs": ["//edit", "//edit[status]"], "types": ["rooted:wikipedia"]},
]


def in_process_verdicts() -> list[tuple[bool, bool]]:
    rooted = Rooted("wikipedia")
    queries = [
        Query.satisfiability("//article/title", rooted),
        Query.emptiness("//article/text/title", rooted),
        Query.containment("//history/edit", "//edit", rooted, rooted),
        Query.coverage("//edit", ["//edit[status]"], rooted, [rooted]),
    ]
    batch = StaticAnalyzer().solve_many(queries)
    assert all(outcome.ok for outcome in batch.outcomes)
    return [(outcome.holds, outcome.satisfiable) for outcome in batch.outcomes]


def test_analyze_batch_round_trips_auditor_query_kinds(tmp_path, capsys):
    batch_file = tmp_path / "audit-queries.jsonl"
    batch_file.write_text(
        "# the four auditor query kinds\n"
        + "\n".join(json.dumps(request) for request in WIRE_REQUESTS)
        + "\n",
        encoding="utf-8",
    )
    code = main(["analyze", "--batch", str(batch_file), "--compact"])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_OK and payload["errors"] == 0
    wire_verdicts = [
        (outcome["holds"], outcome["satisfiable"])
        for outcome in payload["outcomes"]
    ]
    assert wire_verdicts == in_process_verdicts()
    kinds = [outcome["query"]["kind"] for outcome in payload["outcomes"]]
    assert kinds == ["satisfiability", "emptiness", "containment", "coverage"]
    types = {
        t for outcome in payload["outcomes"] for t in outcome["query"]["types"]
    }
    assert types == {"rooted:wikipedia"}


def test_serve_session_round_trips_auditor_query_kinds():
    text = "\n".join(json.dumps(request) for request in WIRE_REQUESTS)
    output = io.StringIO()
    assert serve(io.StringIO(text + "\n"), output) == 0
    responses = [json.loads(line) for line in output.getvalue().splitlines()]
    assert [r["id"] for r in responses] == [r["id"] for r in WIRE_REQUESTS]
    assert all(r["ok"] for r in responses)
    wire_verdicts = [
        (r["outcome"]["holds"], r["outcome"]["satisfiable"]) for r in responses
    ]
    assert wire_verdicts == in_process_verdicts()
    # The coverage gap's witness travels the wire too.
    assert responses[3]["outcome"]["counterexample"] is not None


def test_analyze_inline_rooted_type(capsys):
    code = main(["analyze", "/article/meta", "--kind", "satisfiability",
                 "--type", "rooted:wikipedia", "--compact"])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_OK
    assert payload["outcomes"][0]["holds"] is True


def test_analyze_rejects_nested_rooted_type(capsys):
    code = main(["analyze", "/a", "--kind", "satisfiability",
                 "--type", "rooted:rooted:wikipedia", "--compact"])
    assert code == EXIT_ANALYSIS_ERROR
