"""Unit tests for the Lµ syntax: hash-consing, constructors, substitution, expansion."""

import pytest

from repro.logic import syntax as sx


def test_hash_consing_makes_equal_formulas_identical():
    one = sx.mk_and(sx.prop("a"), sx.dia(1, sx.prop("b")))
    two = sx.mk_and(sx.prop("a"), sx.dia(1, sx.prop("b")))
    assert one is two


def test_or_simplifications():
    assert sx.mk_or(sx.TRUE, sx.prop("a")) is sx.TRUE
    assert sx.mk_or(sx.FALSE, sx.prop("a")) is sx.prop("a")
    assert sx.mk_or(sx.prop("a"), sx.prop("a")) is sx.prop("a")


def test_and_simplifications():
    assert sx.mk_and(sx.FALSE, sx.prop("a")) is sx.FALSE
    assert sx.mk_and(sx.TRUE, sx.prop("a")) is sx.prop("a")


def test_dia_of_false_is_false():
    assert sx.dia(1, sx.FALSE) is sx.FALSE


def test_dia_rejects_bad_program():
    with pytest.raises(ValueError):
        sx.dia(3, sx.TRUE)


def test_big_or_and_big_and():
    props = [sx.prop(name) for name in "abc"]
    assert sx.big_or([]) is sx.FALSE
    assert sx.big_and([]) is sx.TRUE
    assert sx.formula_size(sx.big_or(props)) == 5


def test_fixpoint_requires_definitions():
    with pytest.raises(ValueError):
        sx.mu((), sx.TRUE)
    with pytest.raises(ValueError):
        sx.mu((("X", sx.TRUE), ("X", sx.FALSE)), sx.TRUE)


def test_free_variables():
    formula = sx.mu((("X", sx.dia(1, sx.var("X")) | sx.var("Y")),), sx.var("X"))
    assert sx.free_variables(formula) == {"Y"}
    assert sx.free_variables(sx.prop("a")) == frozenset()


def test_substitute_replaces_free_occurrences_only():
    inner = sx.mu((("X", sx.dia(1, sx.var("X"))),), sx.var("X"))
    formula = sx.mk_or(sx.var("X"), inner)
    substituted = sx.substitute(formula, {"X": sx.prop("a")})
    assert substituted.left is sx.prop("a")
    assert substituted.right is inner  # bound occurrence untouched


def test_substitute_empty_mapping_is_identity():
    formula = sx.dia(1, sx.var("X"))
    assert sx.substitute(formula, {}) is formula


def test_expand_fixpoint_substitutes_closed_definitions():
    formula = sx.mu((("X", sx.dia(1, sx.var("X")) | sx.prop("a")),), sx.var("X"))
    expanded = sx.expand_fixpoint(formula)
    assert sx.free_variables(expanded) == frozenset()
    # Expanding again below the modality reaches the same closed formula.
    assert expanded.is_fixpoint or expanded.kind in (sx.KIND_OR, sx.KIND_DIA)


def test_expand_fixpoint_terminates_on_mutual_recursion():
    formula = sx.mu(
        (
            ("X", sx.dia(1, sx.var("Y"))),
            ("Y", sx.dia(2, sx.var("X")) | sx.prop("leaf")),
        ),
        sx.var("X"),
    )
    expanded = sx.expand_fixpoint(formula)
    assert sx.free_variables(expanded) == frozenset()


def test_mu1_builds_guarded_unary_fixpoint():
    formula = sx.mu1(lambda x: sx.dia(1, x) | sx.prop("a"))
    assert formula.is_fixpoint
    assert len(formula.defs) == 1
    assert formula.body is formula.defs[0][1]


def test_formula_size_counts_shared_subterms_once():
    shared = sx.dia(1, sx.prop("a"))
    formula = sx.mk_and(shared, sx.mk_or(shared, sx.prop("b")))
    assert sx.formula_size(formula) == 5  # and, or, dia, a, b


def test_atomic_propositions():
    formula = sx.mk_and(sx.prop("a"), sx.mk_or(sx.nprop("b"), sx.START))
    assert sx.atomic_propositions(formula) == {"a", "b"}


def test_rename_bound_variables_freshens_binders():
    formula = sx.mu((("X", sx.dia(1, sx.var("X"))),), sx.var("X"))
    renamed = sx.rename_bound_variables(formula)
    assert renamed.defs[0][0] != "X"
    assert sx.free_variables(renamed) == frozenset()


def test_operator_overloading_matches_constructors():
    a, b = sx.prop("a"), sx.prop("b")
    assert (a | b) is sx.mk_or(a, b)
    assert (a & b) is sx.mk_and(a, b)
