"""Parser for the surface syntax of the XPath fragment.

Accepted syntax, following the XPath 1.0 recommendation restricted to the
fragment of Figure 4:

* full axis names with ``::`` (``child::a``, ``preceding-sibling::b``, ...);
  the shorter forms used in the paper (``foll-sibling``, ``prec-sibling``,
  ``desc-or-self``, ``anc-or-self``) are accepted as well;
* the abbreviations ``name`` (for ``child::name``), ``*`` (for ``child::*``),
  ``.`` (for ``self::*``), ``..`` (for ``parent::*``) and ``//`` (for
  ``/descendant-or-self::*/``);
* a leading ``/`` for absolute paths and a leading ``.//`` or ``//`` for
  relative/absolute descendant navigation;
* qualifiers between square brackets combined with ``and``, ``or`` and
  ``not(...)``; inside qualifiers a leading ``/`` or ``//`` anchors the path
  at the *document root* (XPath 1.0 semantics: ``a[//b]`` asks whether the
  document contains a ``b``, not whether ``a`` does);
* attribute steps ``@name``, ``@*`` and the unabbreviated forms
  ``attribute::name`` / ``attribute::*``, in trailing or qualifier position
  only (the tree model has no attribute nodes to continue navigating from);
* qualified names such as ``xsl:template`` or ``xml:lang`` wherever a name
  test or attribute name is expected;
* expression union ``e1 | e2`` and intersection ``e1 intersect e2`` (the
  paper writes ``∩``, which is also accepted), plus parenthesised path unions
  such as ``html/(head | body)``.

Constructs of full XPath that fall outside the fragment — positional
predicates like ``[1]``, node-type tests like ``text()``, functions like
``position()``, node identities like ``id()``/``key()`` — are rejected with
a targeted error message rather than a generic "unexpected character".

:func:`parse_pattern` parses the XSLT 1.0 *match pattern* grammar — the
restriction of XPath to child/attribute steps, ``//`` separators, optional
root anchoring and top-level ``|`` alternatives — into the same AST, with
targeted errors for the pattern-only constructs the fragment rejects.
"""

from __future__ import annotations

import functools
import re

from repro.core.errors import ParseError
from repro.xpath import ast as xp

_AXIS_NAMES: dict[str, xp.Axis] = {
    "child": xp.Axis.CHILD,
    "self": xp.Axis.SELF,
    "parent": xp.Axis.PARENT,
    "descendant": xp.Axis.DESCENDANT,
    "descendant-or-self": xp.Axis.DESC_OR_SELF,
    "desc-or-self": xp.Axis.DESC_OR_SELF,
    "ancestor": xp.Axis.ANCESTOR,
    "ancestor-or-self": xp.Axis.ANC_OR_SELF,
    "anc-or-self": xp.Axis.ANC_OR_SELF,
    "following-sibling": xp.Axis.FOLL_SIBLING,
    "foll-sibling": xp.Axis.FOLL_SIBLING,
    "preceding-sibling": xp.Axis.PREC_SIBLING,
    "prec-sibling": xp.Axis.PREC_SIBLING,
    "following": xp.Axis.FOLLOWING,
    "preceding": xp.Axis.PRECEDING,
}

_TOKEN_RE = re.compile(
    # A name is a QName: an optional single-colon prefix part is folded into
    # the token (the double colon of an axis is never consumed because the
    # optional group requires a name-start character right after the colon).
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z0-9_.\-]*(?::[A-Za-z_][A-Za-z0-9_.\-]*)?)"
    r"|(?P<number>[0-9]+)"
    r"|(?P<symbol>::|//|/|\[|\]|\(|\)|\||∩|&|\*|\.\.|\.|@))"
)

#: XPath node-type tests and functions recognised only to produce a targeted
#: "outside the fragment" error instead of an opaque one.
_UNSUPPORTED_FUNCTIONS = frozenset(
    {"text", "node", "comment", "processing-instruction", "position", "last", "count"}
)

#: Functions selecting nodes by identity (XSLT pattern grammar); recognised
#: separately because "rewrite structurally" is better advice than "outside
#: the fragment".
_IDENTITY_FUNCTIONS = frozenset({"id", "key"})

_STAR_STEP = xp.Step(xp.Axis.DESC_OR_SELF, None)


class _Tokens:
    def __init__(self, text: str):
        self.text = text
        self.items: list[tuple[str, str, int]] = []
        pos = 0
        while pos < len(text):
            if text[pos:].strip() == "":
                break
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                stripped = text[pos:].lstrip()
                offset = pos + (len(text[pos:]) - len(stripped))
                # A quoted argument right after id( / key( would otherwise be
                # reported as a value comparison; name the real culprit.
                if (
                    len(self.items) >= 2
                    and self.items[-1][1] == "("
                    and self.items[-2][0] == "name"
                    and self.items[-2][1] in _IDENTITY_FUNCTIONS
                ):
                    name, name_position = self.items[-2][1], self.items[-2][2]
                    raise ParseError(
                        f"{name}() selects nodes by identity, which the tree "
                        "logic cannot track; match on document structure instead",
                        name_position,
                        text,
                    )
                if stripped[:1] in ("=", "<", ">", "'", '"'):
                    raise ParseError(
                        "value comparisons are outside the supported fragment "
                        "(only element and attribute presence is modelled)",
                        offset,
                        text,
                    )
                raise ParseError("unexpected character in XPath expression", pos, text)
            for group in ("name", "number", "symbol"):
                value = match.group(group)
                if value is not None:
                    self.items.append((group, value, match.start(group)))
                    break
            pos = match.end()
        self.index = 0

    def peek(self, offset: int = 0) -> tuple[str, str, int] | None:
        position = self.index + offset
        if position < len(self.items):
            return self.items[position]
        return None

    def next(self) -> tuple[str, str, int]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of XPath expression", len(self.text), self.text)
        self.index += 1
        return token

    def accept(self, value: str) -> bool:
        token = self.peek()
        if token is not None and token[1] == value:
            self.index += 1
            return True
        return False

    def accept_name(self, value: str) -> bool:
        token = self.peek()
        if token is not None and token[0] == "name" and token[1] == value:
            self.index += 1
            return True
        return False

    def expect(self, value: str) -> None:
        token = self.peek()
        if token is None or token[1] != value:
            position = token[2] if token is not None else len(self.text)
            raise ParseError(f"expected {value!r}", position, self.text)
        self.index += 1

    def at_end(self) -> bool:
        return self.index >= len(self.items)


def parse_xpath(text: str) -> xp.Expr:
    """Parse an XPath expression of the supported fragment."""
    tokens = _Tokens(text)
    expr = _parse_expr(tokens)
    if not tokens.at_end():
        raise ParseError("trailing input after XPath expression", tokens.peek()[2], text)
    return expr


@functools.lru_cache(maxsize=4096)
def parse_xpath_cached(text: str) -> xp.Expr:
    """Memoised :func:`parse_xpath` (safe: the AST is immutable).

    The analysis layers consult an expression twice per problem — once for
    its attribute alphabet, once for the translation — and the batch façade
    re-reduces cached queries; this keeps those re-parses to a dict lookup.
    """
    return parse_xpath(text)


# -- expressions: union / intersection -----------------------------------------


def _parse_expr(tokens: _Tokens) -> xp.Expr:
    left = _parse_intersection(tokens)
    while True:
        token = tokens.peek()
        if token is not None and token[1] == "|":
            tokens.next()
            right = _parse_intersection(tokens)
            left = xp.ExprUnion(left, right)
        else:
            return left


def _parse_intersection(tokens: _Tokens) -> xp.Expr:
    left = _parse_single_expr(tokens)
    while True:
        token = tokens.peek()
        if token is not None and (token[1] in ("∩", "&") or token[1] == "intersect"):
            tokens.next()
            right = _parse_single_expr(tokens)
            left = xp.ExprIntersection(left, right)
        else:
            return left


def _parse_single_expr(tokens: _Tokens) -> xp.Expr:
    token = tokens.peek()
    if token is None:
        raise ParseError("empty XPath expression", 0, tokens.text)
    if token[1] == "//":
        tokens.next()
        rest = _parse_relative_path(tokens)
        return xp.AbsolutePath(xp.PathCompose(_STAR_STEP, rest))
    if token[1] == "/":
        tokens.next()
        return xp.AbsolutePath(_parse_relative_path(tokens))
    return xp.RelativePath(_parse_relative_path(tokens))


# -- paths -----------------------------------------------------------------------


def _parse_relative_path(tokens: _Tokens) -> xp.Path:
    path = _parse_step(tokens)
    while True:
        token = tokens.peek()
        if token is None:
            return path
        if token[1] in ("/", "//"):
            if xp.ends_in_attribute(path):
                raise ParseError(
                    "attribute steps select no tree node to navigate from and "
                    "may only appear in trailing or qualifier position",
                    token[2],
                    tokens.text,
                )
        if token[1] == "//":
            tokens.next()
            path = xp.PathCompose(xp.PathCompose(path, _STAR_STEP), _parse_step(tokens))
        elif token[1] == "/":
            tokens.next()
            path = xp.PathCompose(path, _parse_step(tokens))
        else:
            return path


def _parse_step(tokens: _Tokens) -> xp.Path:
    token = tokens.peek()
    if token is None:
        raise ParseError("expected an XPath step", len(tokens.text), tokens.text)
    kind, value, position = token

    if value == "(":
        tokens.next()
        inner = _parse_path_union(tokens)
        tokens.expect(")")
        return _parse_qualifiers(tokens, inner)

    if value == ".":
        tokens.next()
        return _parse_qualifiers(tokens, xp.Step(xp.Axis.SELF, None))
    if value == "..":
        tokens.next()
        return _parse_qualifiers(tokens, xp.Step(xp.Axis.PARENT, None))
    if value == "*":
        tokens.next()
        return _parse_qualifiers(tokens, xp.Step(xp.Axis.CHILD, None))

    if value == "@":
        tokens.next()
        return _parse_qualifiers(tokens, _parse_attribute_test(tokens))

    if kind == "number":
        raise ParseError(
            "positional predicates are outside the supported fragment "
            "(the logic has no counting)",
            position,
            tokens.text,
        )

    if kind == "name":
        following = tokens.peek(1)
        if following is not None and following[1] == "(" and value in _IDENTITY_FUNCTIONS:
            raise ParseError(
                f"{value}() selects nodes by identity, which the tree logic "
                "cannot track; match on document structure instead",
                position,
                tokens.text,
            )
        if following is not None and following[1] == "(" and value in _UNSUPPORTED_FUNCTIONS:
            raise ParseError(
                f"{value}() is outside the supported fragment (only element "
                "and attribute tests are available)",
                position,
                tokens.text,
            )
        if following is not None and following[1] == "::":
            axis_name = value
            tokens.next()
            tokens.next()  # '::'
            if axis_name == "attribute":
                return _parse_qualifiers(tokens, _parse_attribute_test(tokens))
            axis = _AXIS_NAMES.get(axis_name)
            if axis is None:
                raise ParseError(f"unknown axis {axis_name!r}", position, tokens.text)
            test_token = tokens.peek()
            if test_token is None:
                raise ParseError("expected a node test", len(tokens.text), tokens.text)
            if test_token[1] == "*":
                tokens.next()
                step: xp.Path = xp.Step(axis, None)
            elif test_token[0] == "name":
                tokens.next()
                step = xp.Step(axis, test_token[1])
            else:
                raise ParseError("expected a node test", test_token[2], tokens.text)
            return _parse_qualifiers(tokens, step)
        tokens.next()
        return _parse_qualifiers(tokens, xp.Step(xp.Axis.CHILD, value))

    raise ParseError(f"unexpected token {value!r} in path", position, tokens.text)


def _parse_attribute_test(tokens: _Tokens) -> xp.AttributeStep:
    """The test after ``@`` or ``attribute::``: a (qualified) name or ``*``."""
    token = tokens.peek()
    if token is None:
        raise ParseError("expected an attribute name", len(tokens.text), tokens.text)
    if token[1] == "*":
        tokens.next()
        return xp.AttributeStep(None)
    if token[0] == "name":
        tokens.next()
        return xp.AttributeStep(token[1])
    raise ParseError("expected an attribute name", token[2], tokens.text)


def _parse_path_union(tokens: _Tokens) -> xp.Path:
    left = _parse_relative_path(tokens)
    while tokens.accept("|"):
        right = _parse_relative_path(tokens)
        left = xp.PathUnion(left, right)
    return left


def _parse_qualifiers(tokens: _Tokens, path: xp.Path) -> xp.Path:
    while tokens.accept("["):
        qualifier = _parse_qualifier_or(tokens)
        tokens.expect("]")
        path = xp.QualifiedPath(path, qualifier)
    return path


# -- qualifiers --------------------------------------------------------------------


def _parse_qualifier_or(tokens: _Tokens) -> xp.Qualifier:
    left = _parse_qualifier_and(tokens)
    while tokens.accept_name("or"):
        right = _parse_qualifier_and(tokens)
        left = xp.QualifierOr(left, right)
    return left


def _parse_qualifier_and(tokens: _Tokens) -> xp.Qualifier:
    left = _parse_qualifier_atom(tokens)
    while tokens.accept_name("and"):
        right = _parse_qualifier_atom(tokens)
        left = xp.QualifierAnd(left, right)
    return left


def _parse_qualifier_atom(tokens: _Tokens) -> xp.Qualifier:
    token = tokens.peek()
    if token is None:
        raise ParseError("expected a qualifier", len(tokens.text), tokens.text)
    if token[0] == "name" and token[1] == "not":
        following = tokens.peek(1)
        if following is not None and following[1] == "(":
            tokens.next()
            tokens.next()
            inner = _parse_qualifier_or(tokens)
            tokens.expect(")")
            return xp.QualifierNot(inner)
    if token[1] == "(":
        tokens.next()
        inner = _parse_qualifier_or(tokens)
        tokens.expect(")")
        return inner
    return _parse_qualifier_path(tokens)


# -- XSLT match patterns ----------------------------------------------------------


def parse_pattern(text: str) -> xp.Expr:
    """Parse an XSLT 1.0 match pattern into the fragment's AST.

    The pattern grammar (XSLT 1.0 §5.2) restricts XPath to top-level
    alternatives joined by ``|``, each a sequence of child or attribute
    steps joined by ``/`` or ``//``, optionally anchored at the root by a
    leading ``/`` or ``//``.  Predicates use the fragment's qualifier
    grammar.  One extension of the strict production is accepted because
    the rest of the pipeline supports it: parenthesised relative-path
    unions mid-pattern (``html/(head | body)``).

    The bare pattern ``/`` (the document node) parses to ``/self::*``;
    under a :class:`repro.analysis.problems.Rooted` type constraint that
    expression selects exactly the document node.

    Pattern-only constructs outside the fragment — ``id()`` and ``key()``
    selections, non-child axes, ``.``/``..`` steps — raise
    :class:`ParseError` carrying the offending position.
    """
    tokens = _Tokens(text)
    expr: xp.Expr = _parse_pattern_alternative(tokens)
    while tokens.accept("|"):
        expr = xp.ExprUnion(expr, _parse_pattern_alternative(tokens))
    if not tokens.at_end():
        raise ParseError("trailing input after pattern", tokens.peek()[2], text)
    return expr


@functools.lru_cache(maxsize=4096)
def parse_pattern_cached(text: str) -> xp.Expr:
    """Memoised :func:`parse_pattern` (safe: the AST is immutable)."""
    return parse_pattern(text)


def _parse_pattern_alternative(tokens: _Tokens) -> xp.Expr:
    token = tokens.peek()
    if token is None:
        raise ParseError("empty pattern", len(tokens.text), tokens.text)
    if token[1] == "//":
        tokens.next()
        rest = _parse_pattern_relative(tokens)
        return xp.AbsolutePath(xp.PathCompose(_STAR_STEP, rest))
    if token[1] == "/":
        tokens.next()
        following = tokens.peek()
        if following is None or following[1] == "|":
            # The pattern "/" matches the document node itself.
            return xp.AbsolutePath(xp.Step(xp.Axis.SELF, None))
        return xp.AbsolutePath(_parse_pattern_relative(tokens))
    return xp.RelativePath(_parse_pattern_relative(tokens))


def _parse_pattern_relative(tokens: _Tokens) -> xp.Path:
    path = _parse_pattern_step(tokens)
    while True:
        token = tokens.peek()
        if token is None:
            return path
        if token[1] in ("/", "//"):
            if xp.ends_in_attribute(path):
                raise ParseError(
                    "attribute steps select no tree node to navigate from and "
                    "may only appear in trailing or qualifier position",
                    token[2],
                    tokens.text,
                )
        if token[1] == "//":
            tokens.next()
            path = xp.PathCompose(
                xp.PathCompose(path, _STAR_STEP), _parse_pattern_step(tokens)
            )
        elif token[1] == "/":
            tokens.next()
            path = xp.PathCompose(path, _parse_pattern_step(tokens))
        else:
            return path


def _parse_pattern_step(tokens: _Tokens) -> xp.Path:
    token = tokens.peek()
    if token is None:
        raise ParseError("expected a pattern step", len(tokens.text), tokens.text)
    kind, value, position = token

    if value == "(":
        tokens.next()
        inner: xp.Path = _parse_pattern_relative(tokens)
        while tokens.accept("|"):
            inner = xp.PathUnion(inner, _parse_pattern_relative(tokens))
        tokens.expect(")")
        return _parse_qualifiers(tokens, inner)

    if value == "*":
        tokens.next()
        return _parse_qualifiers(tokens, xp.Step(xp.Axis.CHILD, None))

    if value == "@":
        tokens.next()
        return _parse_qualifiers(tokens, _parse_attribute_test(tokens))

    if value in (".", ".."):
        raise ParseError(
            f"{value!r} is not a pattern step: XSLT match patterns are built "
            "from child and attribute steps only",
            position,
            tokens.text,
        )

    if kind == "number":
        raise ParseError(
            "positional predicates are outside the supported fragment "
            "(the logic has no counting)",
            position,
            tokens.text,
        )

    if kind == "name":
        following = tokens.peek(1)
        if following is not None and following[1] == "(":
            if value in _IDENTITY_FUNCTIONS:
                raise ParseError(
                    f"{value}() selects nodes by identity, which the tree "
                    "logic cannot track; match on document structure instead",
                    position,
                    tokens.text,
                )
            raise ParseError(
                f"{value}() is not allowed in a match pattern (patterns are "
                "built from child and attribute steps)",
                position,
                tokens.text,
            )
        if following is not None and following[1] == "::":
            if value == "child":
                tokens.next()
                tokens.next()  # '::'
                test = tokens.peek()
                if test is None:
                    raise ParseError(
                        "expected a node test", len(tokens.text), tokens.text
                    )
                if test[1] == "*":
                    tokens.next()
                    return _parse_qualifiers(tokens, xp.Step(xp.Axis.CHILD, None))
                if test[0] == "name":
                    tokens.next()
                    return _parse_qualifiers(tokens, xp.Step(xp.Axis.CHILD, test[1]))
                raise ParseError("expected a node test", test[2], tokens.text)
            if value == "attribute":
                tokens.next()
                tokens.next()  # '::'
                return _parse_qualifiers(tokens, _parse_attribute_test(tokens))
            if value in _AXIS_NAMES:
                raise ParseError(
                    f"the {value} axis is not allowed in a match pattern "
                    "(XSLT 1.0 patterns use only the child and attribute axes)",
                    position,
                    tokens.text,
                )
            raise ParseError(f"unknown axis {value!r}", position, tokens.text)
        tokens.next()
        return _parse_qualifiers(tokens, xp.Step(xp.Axis.CHILD, value))

    raise ParseError(f"unexpected token {value!r} in pattern", position, tokens.text)


def _parse_qualifier_path(tokens: _Tokens) -> xp.QualifierPath:
    # Inside qualifiers, paths may start with "." (e.g. ".//b[c]") for
    # navigation relative to the filtered node, or with "/" or "//" for paths
    # anchored at the *document root*: per XPath 1.0, "a[//b]" asks whether
    # the document contains a b, not whether a has a b descendant.
    token = tokens.peek()
    if token is not None and token[1] == "//":
        tokens.next()
        rest = _parse_relative_path(tokens)
        return xp.QualifierPath(xp.PathCompose(_STAR_STEP, rest), absolute=True)
    if token is not None and token[1] == "/":
        tokens.next()
        return xp.QualifierPath(_parse_relative_path(tokens), absolute=True)
    return xp.QualifierPath(_parse_relative_path(tokens))
