"""Abstract syntax of the XPath fragment (Figure 4 of the paper).

The grammar is::

    e ::= /p | p | e₁ ∪ e₂ | e₁ ∩ e₂          expressions
    p ::= p₁/p₂ | p[q] | a::σ | a::* | @l | @* | (p₁ | p₂)   paths
    q ::= q₁ and q₂ | q₁ or q₂ | not q | p | /p   qualifiers
    a ::= child | self | parent | descendant | desc-or-self | ancestor
        | anc-or-self | foll-sibling | prec-sibling | following | preceding

The parenthesised path union ``(p₁ | p₂)`` is a small extension of Figure 4
needed to express the paper's own benchmark query e10, ``html/(head | body)``;
it translates like an expression union applied mid-path.

Two further extensions follow the companion thesis ("Logics for XML"):

* attribute steps ``@l`` / ``@*`` (surface syntax also ``attribute::l``).
  They are only meaningful in *trailing* position of a path or inside a
  qualifier, where they test the presence of an attribute on the selected
  element — attribute nodes themselves are not part of the tree model, so a
  trailing attribute step selects the element carrying the attribute;
* absolute paths inside qualifiers (``a[//b]``, ``a[/b/c]``), marked by
  :attr:`QualifierPath.absolute`, which anchor at the document root as XPath
  1.0 prescribes rather than at the filtered node.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class Axis(enum.Enum):
    """The navigation axes of the fragment."""

    CHILD = "child"
    SELF = "self"
    PARENT = "parent"
    DESCENDANT = "descendant"
    DESC_OR_SELF = "desc-or-self"
    ANCESTOR = "ancestor"
    ANC_OR_SELF = "anc-or-self"
    FOLL_SIBLING = "foll-sibling"
    PREC_SIBLING = "prec-sibling"
    FOLLOWING = "following"
    PRECEDING = "preceding"

    def __str__(self) -> str:
        return self.value


#: The symmetric axis used by the "filtering" translation of qualifiers
#: (Figure 10): ``symmetric(child) = parent`` and so on.
SYMMETRIC_AXIS: dict[Axis, Axis] = {
    Axis.CHILD: Axis.PARENT,
    Axis.PARENT: Axis.CHILD,
    Axis.SELF: Axis.SELF,
    Axis.DESCENDANT: Axis.ANCESTOR,
    Axis.ANCESTOR: Axis.DESCENDANT,
    Axis.DESC_OR_SELF: Axis.ANC_OR_SELF,
    Axis.ANC_OR_SELF: Axis.DESC_OR_SELF,
    Axis.FOLL_SIBLING: Axis.PREC_SIBLING,
    Axis.PREC_SIBLING: Axis.FOLL_SIBLING,
    Axis.FOLLOWING: Axis.PRECEDING,
    Axis.PRECEDING: Axis.FOLLOWING,
}


# -- Paths -------------------------------------------------------------------


@dataclass(frozen=True)
class Step:
    """A navigation step ``a::σ`` or ``a::*`` (``label`` is ``None`` for ``*``)."""

    axis: Axis
    label: str | None = None

    def __str__(self) -> str:
        test = self.label if self.label is not None else "*"
        return f"{self.axis}::{test}"


@dataclass(frozen=True)
class AttributeStep:
    """An attribute step ``@name`` / ``attribute::name`` (``None`` for ``@*``).

    Attribute presence is a property of the element itself, so the step does
    not navigate: in trailing or qualifier position it keeps the elements that
    carry the attribute.
    """

    name: str | None = None

    def __str__(self) -> str:
        return f"@{self.name if self.name is not None else '*'}"


@dataclass(frozen=True)
class PathCompose:
    """Path composition ``p₁/p₂``."""

    first: "Path"
    second: "Path"

    def __str__(self) -> str:
        return f"{self.first}/{self.second}"


@dataclass(frozen=True)
class QualifiedPath:
    """A qualified path ``p[q]``."""

    path: "Path"
    qualifier: "Qualifier"

    def __str__(self) -> str:
        return f"{self.path}[{self.qualifier}]"


@dataclass(frozen=True)
class PathUnion:
    """A parenthesised union of paths ``(p₁ | p₂)`` used inside a larger path."""

    left: "Path"
    right: "Path"

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


Path = Union[Step, AttributeStep, PathCompose, QualifiedPath, PathUnion]


def ends_in_attribute(path: "Path") -> bool:
    """Whether the path's final step is an attribute step.

    Used by the parser and the translations to enforce that attribute steps
    only occur in trailing (or qualifier) position: ``a/@href/b`` is
    meaningless in a model without attribute nodes.
    """
    if isinstance(path, AttributeStep):
        return True
    if isinstance(path, PathCompose):
        return ends_in_attribute(path.second)
    if isinstance(path, QualifiedPath):
        return ends_in_attribute(path.path)
    if isinstance(path, PathUnion):
        return ends_in_attribute(path.left) or ends_in_attribute(path.right)
    return False


# -- Qualifiers ---------------------------------------------------------------


def _format_operand(qualifier: "Qualifier", wrap: tuple[type, ...]) -> str:
    """Render a connective operand, parenthesising the listed node types.

    ``or`` binds weaker than ``and`` and both parse left-associatively, so a
    bare ``QualifierOr`` under an ``and``, or a bare right-nested operand of
    the same connective, would re-parse with a different shape (the printer
    must satisfy ``parse(str(q)) == q``; generator-based round-trip tests
    exercise every nesting).
    """
    text = str(qualifier)
    return f"({text})" if isinstance(qualifier, wrap) else text


@dataclass(frozen=True)
class QualifierAnd:
    left: "Qualifier"
    right: "Qualifier"

    def __str__(self) -> str:
        # The right operand needs parentheses when it is itself an `and`:
        # the grammar is left-associative, so `a and (b and c)` printed bare
        # would re-parse as `(a and b) and c`.
        left = _format_operand(self.left, (QualifierOr,))
        right = _format_operand(self.right, (QualifierOr, QualifierAnd))
        return f"{left} and {right}"


@dataclass(frozen=True)
class QualifierOr:
    left: "Qualifier"
    right: "Qualifier"

    def __str__(self) -> str:
        right = _format_operand(self.right, (QualifierOr,))
        return f"{self.left} or {right}"


@dataclass(frozen=True)
class QualifierNot:
    inner: "Qualifier"

    def __str__(self) -> str:
        return f"not({self.inner})"


@dataclass(frozen=True)
class QualifierPath:
    """A qualifier that tests the existence of a path.

    With ``absolute=True`` the path anchors at the document root (XPath 1.0
    semantics of ``a[//b]`` / ``a[/b]``) instead of at the filtered node.
    """

    path: Path
    absolute: bool = False

    def __str__(self) -> str:
        prefix = "/" if self.absolute else ""
        return f"{prefix}{self.path}"


Qualifier = Union[QualifierAnd, QualifierOr, QualifierNot, QualifierPath]


# -- Expressions ----------------------------------------------------------------


@dataclass(frozen=True)
class AbsolutePath:
    """An absolute expression ``/p``: navigation starts at the document root."""

    path: Path

    def __str__(self) -> str:
        return f"/{self.path}"


@dataclass(frozen=True)
class RelativePath:
    """A relative expression ``p``: navigation starts at the marked context node."""

    path: Path

    def __str__(self) -> str:
        return str(self.path)


@dataclass(frozen=True)
class ExprUnion:
    """Union of the node sets selected by two expressions."""

    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"{self.left} | {self.right}"


@dataclass(frozen=True)
class ExprIntersection:
    """Intersection of the node sets selected by two expressions."""

    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"{self.left} intersect {self.right}"


Expr = Union[AbsolutePath, RelativePath, ExprUnion, ExprIntersection]


def collect_labels(node: "Expr | Path | Qualifier") -> set[str]:
    """The element names mentioned by an expression's node tests.

    Wildcard steps (``a::*``) contribute nothing: they succeed at any element
    whatever its name, so they never distinguish labels.  The analysis
    problems use this to project type constraints onto the element alphabet a
    problem can actually observe (cone-of-influence Lean pruning).
    """
    names: set[str] = set()

    def walk(current) -> None:
        if isinstance(current, Step):
            if current.label is not None:
                names.add(current.label)
        elif isinstance(current, (AbsolutePath, RelativePath)):
            walk(current.path)
        elif isinstance(current, (ExprUnion, ExprIntersection, PathUnion)):
            walk(current.left)
            walk(current.right)
        elif isinstance(current, PathCompose):
            walk(current.first)
            walk(current.second)
        elif isinstance(current, QualifiedPath):
            walk(current.path)
            walk(current.qualifier)
        elif isinstance(current, (QualifierAnd, QualifierOr)):
            walk(current.left)
            walk(current.right)
        elif isinstance(current, QualifierNot):
            walk(current.inner)
        elif isinstance(current, QualifierPath):
            walk(current.path)

    walk(node)
    return names


def collect_attributes(node: "Expr | Path | Qualifier") -> tuple[set[str], bool]:
    """The attribute names mentioned by an expression, plus a wildcard flag.

    Returns ``(names, wildcard)`` where ``names`` are the labels of every
    named attribute step and ``wildcard`` is True when ``@*`` /
    ``attribute::*`` occurs somewhere.  The analysis problems use this to
    project type constraints onto the attribute alphabet a problem can
    actually observe.
    """
    names: set[str] = set()
    wildcard = False

    def walk(current) -> None:
        nonlocal wildcard
        if isinstance(current, AttributeStep):
            if current.name is None:
                wildcard = True
            else:
                names.add(current.name)
        elif isinstance(current, (AbsolutePath, RelativePath)):
            walk(current.path)
        elif isinstance(current, (ExprUnion, ExprIntersection, PathUnion)):
            walk(current.left)
            walk(current.right)
        elif isinstance(current, PathCompose):
            walk(current.first)
            walk(current.second)
        elif isinstance(current, QualifiedPath):
            walk(current.path)
            walk(current.qualifier)
        elif isinstance(current, (QualifierAnd, QualifierOr)):
            walk(current.left)
            walk(current.right)
        elif isinstance(current, QualifierNot):
            walk(current.inner)
        elif isinstance(current, QualifierPath):
            walk(current.path)

    walk(node)
    return names, wildcard
