"""Error hierarchy shared by every subsystem of the library."""


class ReproError(Exception):
    """Base class of every error raised by the library."""


class NavigationError(ReproError):
    """Raised when a focused-tree navigation step is undefined.

    The paper (Section 3) defines the four navigation modalities as partial
    functions; following an undefined modality raises this error.
    """


class ParseError(ReproError):
    """Raised by the XPath, DTD and logic parsers on malformed input."""

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            context = text[max(0, position - 20):position + 20]
            message = f"{message} (at position {position}, near {context!r})"
        super().__init__(message)


class CycleFreenessError(ReproError):
    """Raised when a formula that must be cycle-free is not (Section 4)."""


class SchemaLookupError(ReproError, KeyError):
    """Raised when a built-in schema name is unknown.

    Subclasses :class:`KeyError` so callers doing plain dictionary-style
    lookups keep working, while the analyzer can treat it as the
    input-shaped :class:`ReproError` it is.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


class UnsupportedTypeError(ReproError, TypeError):
    """Raised when a type constraint object is not of a supported kind."""


class SolverLimitError(ReproError):
    """Raised when a solver refuses an instance that exceeds a configured limit.

    The explicit solver of Figure 16 enumerates psi-types eagerly and is only
    intended for small instances and cross-validation; it raises this error
    instead of running for an unbounded amount of time.
    """
