"""The symbolic (BDD-based) satisfiability solver of Section 7.

The solver tests the "plunging" formula ``µX. ψ ∨ ⟨1⟩X ∨ ⟨2⟩X`` at the root of
focused trees: ψ is satisfiable exactly when some root type — a ψ-type with no
pending backward modality, below which the start mark occurs exactly once —
satisfies the plunging formula.  This removes the need to keep witness sets:
at every iteration the solver only maintains the *set of types proved so far*,
represented as a BDD over the Lean bit-vector.

Two sets are maintained so that the start mark occurs exactly once in the
proved trees, mirroring the four cases of ``Upd`` in Figure 16:

* ``U`` — types of trees containing **no** mark,
* ``M`` — types of trees containing **exactly one** mark (either at the root
  of the subtree, or in exactly one of its branches).

Each iteration adds to ``U`` the mark-free types whose required children have
witnesses in ``U``, and to ``M`` the types marked at the node (children in
``U``) or marked through exactly one branch (that branch's witness in ``M``,
the other in ``U``).  The algorithm stops as soon as the final check succeeds
(early termination on satisfiable formulas, one of the key practical
advantages discussed in Section 9) or when both sets are stable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.bdd.manager import BDD
from repro.logic import syntax as sx
from repro.logic.closure import (
    Lean,
    closure_alphabet,
    fisher_ladner_closure,
    lean as compute_lean,
    union_lean,
)
from repro.logic.cyclefree import assert_cycle_free
from repro.solver.governor import Budget, governor_for
from repro.solver.relations import LeanEncoding, TransitionRelation
from repro.trees.binary import BinTree
from repro.trees.unranked import Tree
from repro.trees.binary import binary_forest_to_unranked


@dataclass
class SolverStatistics:
    """Measurements collected during one solver run.

    Fields:

    * ``lean_size`` — number of formulas in the Lean of the plunged formula;
      the BDD manager works over twice this many variables (the unprimed
      ``~x`` and primed ``~y`` vectors).  Lemma 6.7 bounds the running time
      by ``2^O(lean_size)``.
    * ``iterations`` — fixpoint iterations performed before the final check
      succeeded (early termination, Section 9) or the sets became stable.
    * ``relation_partitions`` — conjuncts across the two partitioned ``∆ₐ``
      relations (Section 7.3); 0 partitions means a trivial relation.
    * ``delta_iterations`` — iterations whose relational products were
      answered incrementally from the frontier (the delta against the
      previous proved set) instead of from the whole set.
    * ``partitions_skipped`` — relation partitions never conjoined because
      the cone-of-influence check proved they could not affect a product
      (vacuous components disjoint from the frontier, and every partition of
      a product against the empty set).
    * ``peak_set_nodes`` — largest combined BDD size (in nodes) of the two
      proved-type sets ``U``/``M`` across iterations: the memory high-water
      mark of the fixpoint computation.
    * ``product_calls`` / ``product_cache_hits`` — relational products
      actually computed vs. answered from the per-target product cache of
      :class:`repro.solver.relations.TransitionRelation`.
    * ``bdd_node_count`` / ``bdd_peak_node_count`` — live and peak nodes of
      the solver's BDD manager at the end of the run.
    * ``bdd_ite_calls`` / ``bdd_ite_cache_hits`` — ternary operations issued
      to the manager and computed-table hits among them.
    * ``translation_seconds`` — time to build the Lean encoding, the ``∆ₐ``
      partitions with their elimination schedule, and the root filter.
    * ``solve_seconds`` — time spent in the fixpoint loop itself (the "time"
      column of Table 2).
    """

    lean_size: int = 0
    iterations: int = 0
    relation_partitions: int = 0
    delta_iterations: int = 0
    partitions_skipped: int = 0
    peak_set_nodes: int = 0
    product_calls: int = 0
    product_cache_hits: int = 0
    bdd_node_count: int = 0
    bdd_peak_node_count: int = 0
    bdd_ite_calls: int = 0
    bdd_ite_cache_hits: int = 0
    translation_seconds: float = 0.0
    solve_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "lean_size": self.lean_size,
            "iterations": self.iterations,
            "relation_partitions": self.relation_partitions,
            "delta_iterations": self.delta_iterations,
            "partitions_skipped": self.partitions_skipped,
            "peak_set_nodes": self.peak_set_nodes,
            "product_calls": self.product_calls,
            "product_cache_hits": self.product_cache_hits,
            "bdd_node_count": self.bdd_node_count,
            "bdd_peak_node_count": self.bdd_peak_node_count,
            "bdd_ite_calls": self.bdd_ite_calls,
            "bdd_ite_cache_hits": self.bdd_ite_cache_hits,
            "translation_seconds": round(self.translation_seconds, 6),
            "solve_seconds": round(self.solve_seconds, 6),
        }


@dataclass
class SolverResult:
    """Outcome of a satisfiability test."""

    satisfiable: bool
    model: BinTree | None
    statistics: SolverStatistics
    lean: Lean

    @property
    def unsatisfiable(self) -> bool:
        return not self.satisfiable

    def model_document(self) -> Tree | None:
        """The satisfying model as an unranked tree (first top-level tree)."""
        forest = self.model_forest()
        if forest is None:
            return None
        return forest[0]

    def model_forest(self) -> tuple[Tree, ...] | None:
        """The satisfying model decoded as an unranked forest."""
        if self.model is None:
            return None
        return binary_forest_to_unranked(self.model)


@dataclass
class SymbolicSolver:
    """BDD-based decision procedure for cycle-free closed Lµ formulas.

    Parameters mirror the implementation choices discussed in Section 7 and
    are exposed so the benchmarks can ablate them:

    * ``early_quantification`` — conjunctive partitioning with early
      quantification (Section 7.3); when False the relational product conjoins
      everything before quantifying.
    * ``monolithic_relation`` — build the full ``∆ₐ`` BDD up front instead of
      keeping it partitioned.
    * ``interleaved_order`` — interleave the unprimed/primed vectors in the
      BDD variable order (Section 7.4).
    * ``track_marks`` — maintain the two sets ``U``/``M`` enforcing that the
      start mark occurs exactly once; switching this off reproduces the
      unsound behaviour that motivates the four-case update of Figure 16.
    * ``check_cycle_freeness`` — verify the input formula is cycle-free before
      solving (the algorithm is only correct for cycle-free formulas).
    * ``frontier`` — compute relational products incrementally from the delta
      against the previous iteration's sets (the frontier fixpoint); when
      False every product is recomputed from the whole set, which is the
      naive evaluation the ablation benchmark compares against.
    * ``collect_every`` — run a BDD garbage collection every N fixpoint
      iterations, keeping the loop's live sets (and every registered GC
      participant) and remapping in place.  ``None`` disables collection;
      useful for long-running solves whose intermediate results dominate the
      node table.
    * ``backend`` — which registered BDD engine to solve on (``"dict"``,
      ``"arena"``, ...); ``None`` defers to ``REPRO_BDD_BACKEND`` and then
      the default.  The verdict is backend-independent (enforced by the
      cross-backend conformance suite and the fuzzer's backend axis).
    * ``budget`` — optional :class:`repro.solver.governor.Budget` bounding
      the run (wall-clock deadline, BDD kernel steps, fixpoint iterations,
      Lean size).  Exhaustion raises :class:`repro.core.errors.
      BudgetExceeded` with a structured, backend-independent reason; the
      governor is polled once per fixpoint iteration and — via the BDD
      engine's kernel ticks — every ~1024 kernel frames, so a deadline bites
      within milliseconds even inside one enormous iteration.
    """

    formula: sx.Formula
    extra_labels: tuple[str, ...] = ()
    early_quantification: bool = True
    monolithic_relation: bool = False
    interleaved_order: bool = True
    track_marks: bool = True
    check_cycle_freeness: bool = False
    frontier: bool = True
    collect_every: int | None = None
    max_iterations: int = 10_000
    keep_snapshots: bool = True
    backend: str | None = None
    budget: Budget | None = None

    #: A delta product is attempted only when the delta's BDD is at least
    #: this many times smaller than the set it grew (full products over the
    #: persistent per-step caches are already incremental — only the changed
    #: region does new work — so pushing the delta separately pays off only
    #: when it is genuinely small).
    DELTA_GATE_RATIO = 4
    #: Sets smaller than this skip the gating arithmetic entirely: every
    #: product over them is cheap either way.
    DELTA_GATE_MIN_SET = 256

    _lean: Lean = field(init=False, repr=False)
    _plunged: sx.Formula = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.check_cycle_freeness:
            assert_cycle_free(self.formula)
        self._plunged = sx.mu1(
            lambda x: self.formula | sx.dia(1, x) | sx.dia(2, x), prefix="Plunge"
        )
        self._lean = compute_lean(self._plunged, extra_labels=self.extra_labels)

    @property
    def lean(self) -> Lean:
        return self._lean

    def _gate_delta(self, delta: BDD | None, set_size: int) -> BDD | None:
        """Keep a delta only when pushing it separately can win (see
        ``DELTA_GATE_RATIO``); ``None`` means "full product next time"."""
        if delta is None:
            return None
        if set_size < self.DELTA_GATE_MIN_SET:
            return delta
        budget = set_size // self.DELTA_GATE_RATIO
        return delta if delta.dag_size(limit=budget) <= budget else None

    # -- main loop --------------------------------------------------------------------

    def solve(self) -> SolverResult:
        statistics = SolverStatistics(lean_size=len(self._lean))
        # Resource governance (all checkpoints are cooperative): refuse
        # over-budget Leans before any BDD exists, then let the engine's
        # kernel ticks and the per-iteration poll below enforce the deadline
        # and step budget.  The governor's clock starts here, so translation
        # time counts against the deadline too.
        governor = governor_for(self.budget)
        if governor is not None:
            governor.check_lean(len(self._lean))
        start_translation = time.perf_counter()

        encoding = LeanEncoding(
            self._lean, interleaved=self.interleaved_order, backend=self.backend
        )
        if governor is not None:
            encoding.manager.set_governor(governor)
        relations = {
            program: TransitionRelation(
                encoding,
                program,
                early_quantification=self.early_quantification,
                monolithic=self.monolithic_relation,
            )
            for program in (1, 2)
        }
        statistics.relation_partitions = sum(
            len(relation.partitions) for relation in relations.values()
        )

        types = encoding.types_constraint(primed=False)
        start_literal = encoding.start(primed=False)
        final_filter = encoding.root_filter(self._plunged, primed=False)

        statistics.translation_seconds = time.perf_counter() - start_translation
        start_solve = time.perf_counter()

        manager = encoding.manager
        false = manager.false()
        unmarked = false
        marked = false
        snapshots: list[tuple[BDD, BDD]] = []
        satisfiable = False
        model: BinTree | None = None

        # Witness BDDs are recomputed only when the set they depend on
        # actually changed in the previous iteration; together with the
        # per-target product cache in TransitionRelation this removes the
        # redundant relational products the naive loop performs once one of
        # the two sets has stabilised.  With ``frontier`` on, the chains name
        # the two monotone sequences so a recomputation only pushes the delta
        # through the relation partitions.
        witness_unmarked: dict[int, BDD] = {}
        strict_marked: dict[int, BDD] = {}
        unmarked_node_seen: int | None = None
        marked_node_seen: int | None = None
        unmarked_chain = "unmarked" if self.frontier else None
        marked_chain = "marked" if self.frontier else None
        delta_unmarked: BDD | None = None
        delta_marked: BDD | None = None

        def collect_garbage() -> None:
            """GC the node table mid-fixpoint, remapping the loop's live state."""
            nonlocal types, start_literal, final_filter, unmarked, marked
            nonlocal witness_unmarked, strict_marked, snapshots
            nonlocal unmarked_node_seen, marked_node_seen, false
            nonlocal delta_unmarked, delta_marked
            keep = [types, start_literal, final_filter, unmarked, marked]
            keep.extend(witness_unmarked.values())
            keep.extend(strict_marked.values())
            keep.extend(f for f in (delta_unmarked, delta_marked) if f is not None)
            for pair in snapshots:
                keep.extend(pair)
            remap = manager.garbage_collect([function.node for function in keep])
            wrap = lambda function: manager.wrap(
                manager.translate(remap, function.node)
            )
            types, start_literal = wrap(types), wrap(start_literal)
            final_filter = wrap(final_filter)
            old_unmarked_node, old_marked_node = unmarked.node, marked.node
            unmarked, marked = wrap(unmarked), wrap(marked)
            false = manager.false()
            witness_unmarked = {p: wrap(f) for p, f in witness_unmarked.items()}
            strict_marked = {p: wrap(f) for p, f in strict_marked.items()}
            if delta_unmarked is not None:
                delta_unmarked = wrap(delta_unmarked)
            if delta_marked is not None:
                delta_marked = wrap(delta_marked)
            snapshots = [(wrap(u), wrap(m)) for u, m in snapshots]
            unmarked_node_seen = (
                unmarked.node if unmarked_node_seen == old_unmarked_node else None
            )
            marked_node_seen = (
                marked.node if marked_node_seen == old_marked_node else None
            )

        # Loop invariants hoisted out of the iteration: the mark-free type
        # filter and the negated start literal.
        types_unmarked = types & ~start_literal
        not_start = ~start_literal

        for iteration in range(1, self.max_iterations + 1):
            statistics.iterations = iteration
            if governor is not None:
                governor.check_iteration(iteration)
            if self.collect_every and iteration % self.collect_every == 0:
                collect_garbage()
                types_unmarked = types & ~start_literal
                not_start = ~start_literal
            delta_before = sum(r.delta_products for r in relations.values())
            if self.track_marks:
                if unmarked.node != unmarked_node_seen:
                    witness_unmarked = {
                        program: relations[program].witness(
                            unmarked, unmarked_chain, delta_unmarked
                        )
                        for program in (1, 2)
                    }
                    unmarked_node_seen = unmarked.node
                both_witnessed = witness_unmarked[1] & witness_unmarked[2]
                new_unmarked = types_unmarked & both_witnessed
                if marked.node != marked_node_seen:
                    strict_marked = {
                        program: relations[program].witness_strict(
                            marked, marked_chain, delta_marked
                        )
                        for program in (1, 2)
                    }
                    marked_node_seen = marked.node
                marked_here = start_literal & both_witnessed
                marked_first = (
                    not_start & strict_marked[1] & witness_unmarked[2]
                )
                marked_second = (
                    not_start & witness_unmarked[1] & strict_marked[2]
                )
                new_marked = types & (marked_here | marked_first | marked_second)
            else:
                # Unsound shortcut kept for the ablation benchmark: a single
                # set is maintained and the mark is treated as an ordinary
                # proposition, so several marks (or none) may occur in a
                # "model".  This is exactly what the four-case update of
                # Figure 16 prevents.
                new_unmarked = false
                new_marked = (
                    types
                    & relations[1].witness(marked)
                    & relations[2].witness(marked)
                )

            if sum(r.delta_products for r in relations.values()) > delta_before:
                statistics.delta_iterations += 1

            # The update operator is monotone and the iteration starts from
            # ⊥, so the proved sets only grow: ``new_unmarked``/``new_marked``
            # already contain the previous sets and *are* the next sets (no
            # union needed).
            unmarked_changed = new_unmarked != unmarked
            marked_changed = new_marked != marked
            changed = unmarked_changed or marked_changed
            if self.frontier:
                # The deltas feed the success check and — when small enough
                # (see DELTA_GATE_RATIO) — the next iteration's incremental
                # products; ¬unmarked/¬marked hit the manager's two-way
                # negation cache, so this costs one conjunction per set that
                # actually changed.
                delta_unmarked = (
                    (new_unmarked & ~unmarked) if unmarked_changed else None
                )
                delta_marked = (new_marked & ~marked) if marked_changed else None
            unmarked, marked = new_unmarked, new_marked
            if self.keep_snapshots:
                snapshots.append((unmarked, marked))
            unmarked_size = unmarked.dag_size()
            marked_size = marked.dag_size()
            statistics.peak_set_nodes = max(
                statistics.peak_set_nodes, unmarked_size + marked_size
            )

            # Only types added this iteration can newly pass the final check:
            # with the frontier on, testing the marked delta instead of the
            # whole marked set is equivalent (earlier iterations tested the
            # rest) and touches a much smaller BDD.
            if self.frontier:
                candidates = delta_marked if delta_marked is not None else false
            else:
                candidates = marked
            success = candidates & final_filter
            if not success.is_false:
                satisfiable = True
                if self.track_marks:
                    from repro.solver.models import reconstruct_counterexample

                    model = reconstruct_counterexample(
                        encoding,
                        relations,
                        snapshots if self.keep_snapshots else [(unmarked, marked)],
                        success,
                    )
                break
            if not changed:
                break
            if self.frontier:
                # Gate the deltas the *next* iteration's products will see
                # (after the success check, which needs the full marked
                # delta): a delta close in size to its set is not worth
                # pushing separately — the per-step product caches already
                # make the full product incremental.
                delta_unmarked = self._gate_delta(delta_unmarked, unmarked_size)
                delta_marked = self._gate_delta(delta_marked, marked_size)

        statistics.solve_seconds = time.perf_counter() - start_solve
        statistics.product_calls = sum(r.product_calls for r in relations.values())
        statistics.product_cache_hits = sum(
            r.product_cache_hits for r in relations.values()
        )
        statistics.partitions_skipped = sum(
            r.partitions_skipped for r in relations.values()
        )
        manager_stats = encoding.manager.statistics()
        statistics.bdd_node_count = manager_stats.node_count
        statistics.bdd_peak_node_count = manager_stats.peak_node_count
        statistics.bdd_ite_calls = manager_stats.ite_calls
        statistics.bdd_ite_cache_hits = manager_stats.ite_cache_hits
        return SolverResult(
            satisfiable=satisfiable,
            model=model,
            statistics=statistics,
            lean=self._lean,
        )


@dataclass
class MergedResult:
    """Outcome of one merged multi-goal solver run.

    ``results`` holds one :class:`SolverResult` per goal formula, in input
    order; every result shares the run's single :class:`SolverStatistics`
    (one fixpoint decided them all) and the one merged :class:`Lean`.
    """

    results: tuple[SolverResult, ...]
    statistics: SolverStatistics
    lean: Lean


@dataclass
class MergedSolver:
    """Decide several formulas in *one* fixpoint over one shared BDD arena.

    The key observation (ROADMAP item 3; the shared-closure structure worked
    out in Genevès' thesis) is that the fixpoint of
    :meth:`SymbolicSolver.solve` is *goal-agnostic*: the proved-type sets
    ``U``/``M`` depend only on the Lean and the ``∆ₐ`` relations, never on
    which formula is being decided — the goal only enters through the final
    filter ``root ∧ statusᵩ``.  So a batch of formulas over one consistent
    alphabet can share everything: each goal ψᵢ is plunged with its own
    fresh fixpoint variable (``µXᵢ. ψᵢ ∨ ⟨1⟩Xᵢ ∨ ⟨2⟩Xᵢ`` — the *goal bit*,
    one Lean entry per goal), the merged Lean is the Lean of the disjunction
    of the plunged goals (the union of their closures, so shared
    subformulas — in practice most of a schema's type translation — get one
    bit), and a single frontier fixpoint over the one shared arena decides
    every goal.  Witnesses come from the same marked-model reconstruction as
    the single solver, restricted to the goal's filter.

    The fixpoint state is kept *factored*: one ``(U, M)`` pair per goal,
    each over the goal's own cone of Lean bits, advanced in lockstep by the
    one iteration loop.  Goals cannot interact — conditioned on the shared
    bits, the merged proved set is exactly the cross product of the per-goal
    sets — so a monolithic product state would cost multiplicative BDD nodes
    for zero information (measured super-linear: 18 audit goals over a
    283-bit merged Lean never finish monolithically; factored they cost the
    sum of the per-goal fixpoints minus everything shared).  Sharing still
    happens where it matters: one Lean, one variable order, one status BDD
    per distinct subformula, one ITE cache, one types/label constraint per
    hash-consed shape, one governor.

    Early termination adapts per goal: a goal leaves the loop the iteration
    its filter first intersects its marked frontier (satisfiable) or its
    pair stabilises (unsatisfiable); the loop ends when no goal remains.

    Goals may be built over *different* pruned alphabets: each goal's label
    constraint is restricted to its own closure's labels and the rest of
    the merged Lean's labels are never mentioned (don't-care dimensions the
    goal's sets stay cylinders over), so the shared ``#other`` proposition
    keeps its per-goal meaning (see
    :meth:`repro.solver.relations.LeanEncoding.types_constraint`) and every
    goal's proved sets — hence its verdict and iteration count — are
    node-for-node what its own per-query solve produces.  Identical sets
    still decode through the *merged* variable order, which merging can
    shuffle, so model reconstruction pins each pick to the goal's own
    per-query Lean order (:meth:`_goal_pick_order`) and the witness document
    comes out byte-identical too.

    Options mirror :class:`SymbolicSolver`.  A ``budget`` governs the whole
    merged run; exhaustion raises :class:`repro.core.errors.BudgetExceeded`
    for the *group* — the API layer bisects the group and retries the
    halves so only genuinely expensive goals end up unknown.
    """

    formulas: tuple[sx.Formula, ...]
    extra_labels: tuple[str, ...] = ()
    early_quantification: bool = True
    monolithic_relation: bool = False
    interleaved_order: bool = True
    track_marks: bool = True
    check_cycle_freeness: bool = False
    frontier: bool = True
    collect_every: int | None = None
    max_iterations: int = 10_000
    keep_snapshots: bool = True
    backend: str | None = None
    budget: Budget | None = None

    _lean: Lean = field(init=False, repr=False)
    _plunged: tuple[sx.Formula, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.formulas:
            raise ValueError("MergedSolver needs at least one goal formula")
        if self.check_cycle_freeness:
            for formula in self.formulas:
                assert_cycle_free(formula)
        self._plunged = tuple(
            sx.mu1(lambda x, f=formula: f | sx.dia(1, x) | sx.dia(2, x), prefix="Plunge")
            for formula in self.formulas
        )
        self._lean = union_lean(self._plunged, extra_labels=self.extra_labels)

    @property
    def lean(self) -> Lean:
        return self._lean

    def _goal_pick_order(self, encoding: LeanEncoding, goal: int) -> tuple[str, ...]:
        """The goal's per-query Lean order, as variable names of the shared encoding.

        ``pick_assignment`` walks the manager's variable order, so identical
        proved sets decode to different (equally valid) witnesses whenever
        the merged order differs from the goal's own Lean order — a sibling
        goal's closure can e.g. pull ``#other`` ahead of the concrete labels
        in the sorted alphabet.  Reconstruction therefore picks every type
        in the order of the goal's stand-alone Lean, mapped into the shared
        encoding; every stand-alone item has a merged bit because the merged
        closure and alphabet are supersets of the goal's.
        """
        solo = compute_lean(self._plunged[goal], extra_labels=self.extra_labels)
        merged = self._lean
        return tuple(
            encoding.x_names[merged.position(item)]
            for item in solo.items
            if item in merged
        )

    # -- main loop ----------------------------------------------------------------

    def solve(self) -> MergedResult:
        statistics = SolverStatistics(lean_size=len(self._lean))
        governor = governor_for(self.budget)
        if governor is not None:
            governor.check_lean(len(self._lean))
        start_translation = time.perf_counter()

        encoding = LeanEncoding(
            self._lean, interleaved=self.interleaved_order, backend=self.backend
        )
        if governor is not None:
            encoding.manager.set_governor(governor)

        count = len(self._plunged)
        # Each goal's *cone*: the merged-Lean modal bits its own closure
        # contributes.  The fixpoint state below stays factored — one (U, M)
        # pair per goal, each over its own cone plus the shared bits —
        # because goals cannot interact: conditioned on the shared bits the
        # merged proved set is exactly the cross product of the per-goal
        # proved sets, which a single product BDD would represent at
        # multiplicative node cost for zero information.  Factored, every
        # shared subformula still pays once (one variable, one status BDD,
        # one hash-consed node in the one arena), which is where the batch
        # saving actually lives.
        cones = []
        goal_labels = []
        for plunged in self._plunged:
            closure = fisher_ladner_closure(plunged)
            cones.append(
                frozenset(
                    self._lean.position(item)
                    for item in closure
                    if item.kind == sx.KIND_DIA and item in self._lean
                )
            )
            labels, _attributes = closure_alphabet(closure)
            goal_labels.append(
                frozenset(labels)
                | frozenset(self.extra_labels)
                | {self._lean.other_label}
            )
        # One ∆ₐ view per (goal, program): partitions restricted to the
        # goal's cone.  The status BDDs inside the partitions are cached on
        # the shared encoding, so bits common to several goals are built
        # once and every view's conjuncts are hash-consed against each other.
        relations: dict[tuple[int, int], TransitionRelation] = {
            (goal, program): TransitionRelation(
                encoding,
                program,
                early_quantification=self.early_quantification,
                monolithic=self.monolithic_relation,
                modal_indices=cones[goal],
            )
            for goal in range(count)
            for program in (1, 2)
        }
        statistics.relation_partitions = sum(
            len(relation.partitions) for relation in relations.values()
        )

        types = [
            encoding.types_constraint(
                primed=False,
                modal_indices=cones[goal],
                labels=goal_labels[goal],
            )
            for goal in range(count)
        ]
        start_literal = encoding.start(primed=False)
        # One root filter per goal bit: ¬ischild₁ ∧ ¬ischild₂ ∧ status(µXᵢ).
        filters = [
            encoding.root_filter(plunged, primed=False) for plunged in self._plunged
        ]

        statistics.translation_seconds = time.perf_counter() - start_translation
        start_solve = time.perf_counter()

        manager = encoding.manager
        false = manager.false()
        unmarked: list[BDD] = [false] * count
        marked: list[BDD] = [false] * count
        snapshots: list[list[tuple[BDD, BDD]]] = [[] for _ in range(count)]
        satisfiable = [False] * count
        active = set(range(count))
        # Per-goal success set, captured the iteration the goal is decided.
        # Reconstructing from this earliest set (not the final fixpoint)
        # mirrors the early-terminating single solver: the marked roots it
        # contains carry the start mark as shallowly as possible, so the
        # decoded document is the same minimal-depth witness a per-query
        # solve produces.
        successes: dict[int, BDD] = {}

        witness_unmarked: list[dict[int, BDD]] = [{} for _ in range(count)]
        strict_marked: list[dict[int, BDD]] = [{} for _ in range(count)]
        unmarked_node_seen: list[int | None] = [None] * count
        marked_node_seen: list[int | None] = [None] * count
        unmarked_chain = "unmarked" if self.frontier else None
        marked_chain = "marked" if self.frontier else None
        delta_unmarked: list[BDD | None] = [None] * count
        delta_marked: list[BDD | None] = [None] * count

        def collect_garbage() -> None:
            nonlocal types, start_literal, filters, unmarked, marked
            nonlocal witness_unmarked, strict_marked, snapshots, successes
            nonlocal unmarked_node_seen, marked_node_seen, false
            nonlocal delta_unmarked, delta_marked
            keep = [start_literal]
            keep.extend(types)
            keep.extend(filters)
            keep.extend(unmarked)
            keep.extend(marked)
            keep.extend(successes.values())
            for caches in witness_unmarked:
                keep.extend(caches.values())
            for caches in strict_marked:
                keep.extend(caches.values())
            keep.extend(f for f in delta_unmarked if f is not None)
            keep.extend(f for f in delta_marked if f is not None)
            for goal_snapshots in snapshots:
                for pair in goal_snapshots:
                    keep.extend(pair)
            remap = manager.garbage_collect([function.node for function in keep])
            wrap = lambda function: manager.wrap(
                manager.translate(remap, function.node)
            )
            start_literal = wrap(start_literal)
            types = [wrap(function) for function in types]
            filters = [wrap(function) for function in filters]
            old_unmarked_nodes = [function.node for function in unmarked]
            old_marked_nodes = [function.node for function in marked]
            unmarked = [wrap(function) for function in unmarked]
            marked = [wrap(function) for function in marked]
            false = manager.false()
            witness_unmarked = [
                {p: wrap(f) for p, f in caches.items()} for caches in witness_unmarked
            ]
            strict_marked = [
                {p: wrap(f) for p, f in caches.items()} for caches in strict_marked
            ]
            successes = {goal: wrap(f) for goal, f in successes.items()}
            delta_unmarked = [
                wrap(f) if f is not None else None for f in delta_unmarked
            ]
            delta_marked = [wrap(f) if f is not None else None for f in delta_marked]
            snapshots = [
                [(wrap(u), wrap(m)) for u, m in goal_snapshots]
                for goal_snapshots in snapshots
            ]
            unmarked_node_seen[:] = [
                unmarked[goal].node if seen == old_unmarked_nodes[goal] else None
                for goal, seen in enumerate(unmarked_node_seen)
            ]
            marked_node_seen[:] = [
                marked[goal].node if seen == old_marked_nodes[goal] else None
                for goal, seen in enumerate(marked_node_seen)
            ]

        types_unmarked = [constraint & ~start_literal for constraint in types]
        not_start = ~start_literal

        # One frontier fixpoint over the shared arena: each iteration
        # advances every still-undecided goal's (U, M) pair by one Upd step.
        # A goal leaves the active set the iteration its filter intersects
        # its marked frontier (satisfiable, early termination per goal) or
        # the iteration its pair stabilises (unsatisfiable) — so late
        # iterations only touch the goals that still need them.
        for iteration in range(1, self.max_iterations + 1):
            statistics.iterations = iteration
            if governor is not None:
                governor.check_iteration(iteration)
            if self.collect_every and iteration % self.collect_every == 0:
                collect_garbage()
                types_unmarked = [constraint & ~start_literal for constraint in types]
                not_start = ~start_literal
            iteration_sets = 0
            used_delta = False
            for goal in sorted(active):
                first = relations[(goal, 1)]
                second = relations[(goal, 2)]
                delta_before = first.delta_products + second.delta_products
                if self.track_marks:
                    if unmarked[goal].node != unmarked_node_seen[goal]:
                        witness_unmarked[goal] = {
                            1: first.witness(
                                unmarked[goal], unmarked_chain, delta_unmarked[goal]
                            ),
                            2: second.witness(
                                unmarked[goal], unmarked_chain, delta_unmarked[goal]
                            ),
                        }
                        unmarked_node_seen[goal] = unmarked[goal].node
                    both_witnessed = (
                        witness_unmarked[goal][1] & witness_unmarked[goal][2]
                    )
                    new_unmarked = types_unmarked[goal] & both_witnessed
                    if marked[goal].node != marked_node_seen[goal]:
                        strict_marked[goal] = {
                            1: first.witness_strict(
                                marked[goal], marked_chain, delta_marked[goal]
                            ),
                            2: second.witness_strict(
                                marked[goal], marked_chain, delta_marked[goal]
                            ),
                        }
                        marked_node_seen[goal] = marked[goal].node
                    marked_here = start_literal & both_witnessed
                    marked_first = (
                        not_start
                        & strict_marked[goal][1]
                        & witness_unmarked[goal][2]
                    )
                    marked_second = (
                        not_start
                        & witness_unmarked[goal][1]
                        & strict_marked[goal][2]
                    )
                    new_marked = types[goal] & (
                        marked_here | marked_first | marked_second
                    )
                else:
                    new_unmarked = false
                    new_marked = (
                        types[goal]
                        & first.witness(marked[goal])
                        & second.witness(marked[goal])
                    )

                if first.delta_products + second.delta_products > delta_before:
                    used_delta = True

                unmarked_changed = new_unmarked != unmarked[goal]
                marked_changed = new_marked != marked[goal]
                changed = unmarked_changed or marked_changed
                if self.frontier:
                    delta_unmarked[goal] = (
                        (new_unmarked & ~unmarked[goal]) if unmarked_changed else None
                    )
                    delta_marked[goal] = (
                        (new_marked & ~marked[goal]) if marked_changed else None
                    )
                unmarked[goal], marked[goal] = new_unmarked, new_marked
                if self.keep_snapshots:
                    snapshots[goal].append((new_unmarked, new_marked))
                unmarked_size = new_unmarked.dag_size()
                marked_size = new_marked.dag_size()
                iteration_sets += unmarked_size + marked_size

                # Only types added this iteration can newly pass the final
                # check, so the goal is probed against its marked delta.
                if self.frontier:
                    candidates = (
                        delta_marked[goal]
                        if delta_marked[goal] is not None
                        else false
                    )
                else:
                    candidates = new_marked
                success = candidates & filters[goal]
                if not success.is_false:
                    satisfiable[goal] = True
                    successes[goal] = success
                    active.discard(goal)
                    continue
                if not changed:
                    # Stable pair with the filter never hit: unsatisfiable.
                    active.discard(goal)
                    continue
                if self.frontier:
                    delta_unmarked[goal] = self._gate_delta(
                        delta_unmarked[goal], unmarked_size
                    )
                    delta_marked[goal] = self._gate_delta(
                        delta_marked[goal], marked_size
                    )
            if used_delta:
                statistics.delta_iterations += 1
            statistics.peak_set_nodes = max(
                statistics.peak_set_nodes, iteration_sets
            )
            if not active:
                break

        # Witness reconstruction per satisfiable goal, from the success set
        # captured the iteration the goal was decided — the same set an
        # early-terminating single solve reconstructs from, so the decoded
        # document carries the start mark at minimal depth (in particular,
        # inside the *first* top-level tree, which is the one
        # ``model_document`` returns).  Each goal reconstructs against its
        # own relation views: the full-Lean constraint would wrongly demand
        # ``¬status`` for modal bits the goal's closure never claims.
        models: list[BinTree | None] = [None] * count
        if self.track_marks:
            from repro.solver.models import reconstruct_counterexample

            for goal, is_sat in enumerate(satisfiable):
                if not is_sat:
                    continue
                history = (
                    snapshots[goal]
                    if self.keep_snapshots
                    else [(unmarked[goal], marked[goal])]
                )
                models[goal] = reconstruct_counterexample(
                    encoding,
                    {1: relations[(goal, 1)], 2: relations[(goal, 2)]},
                    history,
                    successes[goal],
                    pick_order=self._goal_pick_order(encoding, goal),
                )

        statistics.solve_seconds = time.perf_counter() - start_solve
        statistics.product_calls = sum(r.product_calls for r in relations.values())
        statistics.product_cache_hits = sum(
            r.product_cache_hits for r in relations.values()
        )
        statistics.partitions_skipped = sum(
            r.partitions_skipped for r in relations.values()
        )
        manager_stats = encoding.manager.statistics()
        statistics.bdd_node_count = manager_stats.node_count
        statistics.bdd_peak_node_count = manager_stats.peak_node_count
        statistics.bdd_ite_calls = manager_stats.ite_calls
        statistics.bdd_ite_cache_hits = manager_stats.ite_cache_hits
        results = tuple(
            SolverResult(
                satisfiable=satisfiable[goal],
                model=models[goal],
                statistics=statistics,
                lean=self._lean,
            )
            for goal in range(count)
        )
        return MergedResult(results=results, statistics=statistics, lean=self._lean)

    # Shared with SymbolicSolver: the same delta-gating heuristic.
    DELTA_GATE_RATIO = SymbolicSolver.DELTA_GATE_RATIO
    DELTA_GATE_MIN_SET = SymbolicSolver.DELTA_GATE_MIN_SET
    _gate_delta = SymbolicSolver._gate_delta


def is_satisfiable(formula: sx.Formula, **options) -> bool:
    """Convenience wrapper: run the symbolic solver and return satisfiability."""
    return SymbolicSolver(formula, **options).solve().satisfiable
