"""A packed-array ROBDD arena with complement edges — the ``"arena"`` backend.

Same semantics as :class:`repro.bdd.manager.BDDManager` (it satisfies
:class:`repro.bdd.protocol.BDDBackend` and passes the cross-backend
conformance suite), different representation, chosen for CPython speed:

* **Int-indexed node arena.**  Nodes live in three parallel arrays
  ``_levels`` / ``_lows`` / ``_highs`` indexed by a dense node *index*; a node
  *reference* packs the index with a complement bit: ``ref = index << 1 | sign``.
  There is a single terminal at index 0, so ``TRUE == 0`` and
  ``FALSE == 1`` (``TRUE ^ 1``) — the opposite numbering from the dict
  backend, which is exactly why clients must compare against
  ``manager.FALSE`` / ``manager.TRUE`` instead of literals.
* **Complement edges** make negation O(1) (``ref ^ 1``), halve the node table
  for the negation-heavy fixpoint workload (the solver complements the U/M
  sets on every iteration), and double computed-table sharing.  Canonical
  form: the *high* edge of every stored node is regular (sign extracted at
  construction), so equal functions still have equal references.
* **Packed integer cache keys.**  The unique table and the computed tables
  are keyed by small ints (``(low << 24 | high) << 15 | level`` etc.) instead
  of tuples — no tuple allocation on the hot path, and the unique keys fit in
  64 bits so garbage collection can recompute them vectorised with numpy.
  CPython dicts are themselves open-addressed hash tables, so with integer
  keys they *are* the open-addressed unique/computed tables of the classical
  C implementations, with the probing loop in C instead of Python.
* **A dedicated binary AND kernel.**  ``conj``/``disj``/``implies`` all
  reduce to one complemented ``_and`` (De Morgan), sharing a single 2-key
  computed table; the general ternary :meth:`ite` is kept for ``xor``/``iff``
  and true three-operand calls.
* **Closure-compiled kernels.**  The recursive kernels are compiled once per
  arena (:meth:`_compile_kernels`) as closures over the node arrays, cache
  dicts and counters, with the hash-consed constructor inlined at the hottest
  sites and quantified variable sets represented as level *bitmasks* — this
  removes the ``self.`` attribute traffic, tuple hashing and set-membership
  costs that dominate per-recursion-frame time in CPython.

The packing reserves 24 bits for a reference, capping the arena at 2^23
(~8.4M) live nodes — far above the benchmark workloads; exceeding it raises
:class:`ArenaCapacityError` rather than silently corrupting keys.

Garbage collection implements the same hook contract as the dict backend
(root providers + remap listeners, ``generation`` counter, a relocation dict
covering every surviving reference in **both** polarities, because clients
index the remap directly).  The sweep is vectorised with numpy when
available: mark bits become a boolean mask, the dense renumbering is a
``cumsum``, child references and unique keys are recomputed array-at-a-time.
Without numpy a pure-Python sweep produces identical results.  After a sweep
the kernels are recompiled against the rebuilt arrays.
"""

from __future__ import annotations

import sys
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.bdd.manager import BDD, BDDStatistics

try:  # numpy accelerates the GC sweep only; everything works without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via _sweep_python tests
    _np = None

#: Bits reserved for a packed node reference in cache keys.
REF_BITS = 24
#: Bits reserved for a level in the unique-table key.
LEVEL_BITS = 15
#: Largest node *index* (references carry one extra sign bit).
MAX_NODES = 1 << (REF_BITS - 1)
#: Sentinel level stored for the terminal: below every real variable.
TERMINAL_LEVEL = (1 << LEVEL_BITS) - 1

_CAPACITY_MESSAGE = (
    f"arena node table exceeded {MAX_NODES} nodes; "
    "use the dict backend for workloads this large"
)


class ArenaCapacityError(RuntimeError):
    """Raised when the arena outgrows its packed 24-bit reference space."""


class ArenaBDDManager:
    """Packed-array BDD engine; drop-in for :class:`BDDManager` (see module doc)."""

    backend_name = "arena"

    # Complement edges: the single terminal (index 0) is TRUE, its complement
    # is FALSE.  Note this is the *reverse* of the dict backend's constants.
    TRUE = 0
    FALSE = 1

    def __init__(self, variables: Sequence[str] = ()):
        # Parallel node arrays; entry 0 is the terminal and never dereferenced
        # on semantic paths (its sentinel level orders below every variable).
        self._levels: list[int] = [TERMINAL_LEVEL]
        self._lows: list[int] = [0]
        self._highs: list[int] = [0]
        self._unique: dict[int, int] = {}
        # Computed tables, all packed-int keyed.  The dict objects are stable
        # (cleared in place, never replaced) so the compiled kernels can close
        # over them.
        self._and_cache: dict[int, int] = {}
        self._ite_cache: dict[int, int] = {}
        self._quant_cache: dict[int, int] = {}
        # Quantified level set -> (tag, level bitmask, max level); the tag
        # makes the set part of a packed quantifier-cache key.
        self._quant_tags: dict[frozenset[int], tuple[int, int, int]] = {}
        self._rename_cache: dict[tuple, int] = {}
        self._restrict_cache: dict[tuple, int] = {}
        self._var_names: list[str] = []
        self._var_levels: dict[str, int] = {}
        # Counters behind ``statistics()``; the hot pair lives in a list the
        # compiled kernels close over: [ite_calls, ite_cache_hits].
        self._counts = [0, 0]
        # One-slot box for the cooperative resource governor; a list (not an
        # attribute) so the compiled kernels can close over it and
        # ``set_governor`` swaps the occupant without recompiling.
        self._governor_cell: list = [None]
        self._neg_calls = 0
        self._rename_fast = 0
        self._peak_nodes = 0
        self._gc_runs = 0
        self._reclaimed = 0
        self._gc_hooks: list[
            tuple[Callable[[], Iterable[int]], Callable[[dict[int, int]], None]]
        ] = []
        self.generation = 0
        self._compile_kernels()
        for name in variables:
            self.add_variable(name)

    # -- compiled kernels ----------------------------------------------------

    def _compile_kernels(self) -> None:
        """(Re)compile the recursive kernels as closures over the arena state.

        Every name the kernels touch per frame is a closure cell (array,
        cache dict, counter list) — no ``self.`` lookups on the recursion
        path.  Must be re-run whenever the node arrays are *replaced* (only
        :meth:`garbage_collect` does); the cache dicts are always mutated in
        place so they never go stale.
        """
        levels = self._levels
        lows = self._lows
        highs = self._highs
        unique = self._unique
        and_cache = self._and_cache
        ite_cache = self._ite_cache
        quant_cache = self._quant_cache
        counts = self._counts
        governor_cell = self._governor_cell

        def _mk(level: int, low: int, high: int) -> int:
            """Hash-consed constructor (complement-edge canonical form)."""
            if low == high:
                return low
            # Canonical rule: the stored high edge is regular.  A complemented
            # high edge flips the whole node: (l, low, ¬h) == ¬(l, ¬low, h).
            sign = high & 1
            if sign:
                low ^= 1
                high ^= 1
            key = ((low << REF_BITS) | high) << LEVEL_BITS | level
            index = unique.get(key)
            if index is None:
                index = len(levels)
                if index >= MAX_NODES:
                    raise ArenaCapacityError(_CAPACITY_MESSAGE)
                levels.append(level)
                lows.append(low)
                highs.append(high)
                unique[key] = index
            return (index << 1) | sign

        def _and(a: int, b: int) -> int:
            """Binary conjunction — the hot kernel behind conj/disj/implies."""
            counts[0] += 1
            if governor_cell[0] is not None:
                governor_cell[0].tick()
            if a == 1 or b == 1:
                return 1
            if a == 0:
                return b
            if b == 0 or a == b:
                return a
            if a ^ b == 1:
                return 1
            if a > b:
                a, b = b, a
            key = (a << REF_BITS) | b
            result = and_cache.get(key)
            if result is not None:
                counts[1] += 1
                return result
            index_a = a >> 1
            index_b = b >> 1
            level_a = levels[index_a]
            level_b = levels[index_b]
            if level_a <= level_b:
                level = level_a
                sign = a & 1
                low_a = lows[index_a] ^ sign
                high_a = highs[index_a] ^ sign
            else:
                level = level_b
                low_a = high_a = a
            if level_b <= level_a:
                sign = b & 1
                low_b = lows[index_b] ^ sign
                high_b = highs[index_b] ^ sign
            else:
                low_b = high_b = b
            low = _and(low_a, low_b)
            high = _and(high_a, high_b)
            if low == high:
                result = low
            else:  # inlined _mk — this is the hottest construction site
                sign = high & 1
                if sign:
                    low ^= 1
                    high ^= 1
                node_key = ((low << REF_BITS) | high) << LEVEL_BITS | level
                index = unique.get(node_key)
                if index is None:
                    index = len(levels)
                    if index >= MAX_NODES:
                        raise ArenaCapacityError(_CAPACITY_MESSAGE)
                    levels.append(level)
                    lows.append(low)
                    highs.append(high)
                    unique[node_key] = index
                result = (index << 1) | sign
            and_cache[key] = result
            return result

        def _ite(f: int, g: int, h: int) -> int:
            counts[0] += 1
            if governor_cell[0] is not None:
                governor_cell[0].tick()
            # Constant and coincidence simplifications (TRUE == 0, FALSE == 1).
            if f == 0:
                return g
            if f == 1:
                return h
            if g == h:
                return g
            if g == f:
                g = 0
            elif g == f ^ 1:
                g = 1
            if h == f:
                h = 1
            elif h == f ^ 1:
                h = 0
            if g == h:
                return g
            if g == 0 and h == 1:
                return f
            if g == 1 and h == 0:
                return f ^ 1
            # Two-operand shapes route through the shared AND kernel.
            if h == 1:
                return _and(f, g)
            if g == 1:
                return _and(f ^ 1, h)
            if g == 0:
                return _and(f ^ 1, h ^ 1) ^ 1
            if h == 0:
                return _and(f, g ^ 1) ^ 1
            # Canonical triple: regular f (else swap branches), regular g
            # (else complement both branches and the result).
            if f & 1:
                f ^= 1
                g, h = h, g
            sign = g & 1
            if sign:
                g ^= 1
                h ^= 1
            key = ((f << REF_BITS) | g) << REF_BITS | h
            result = ite_cache.get(key)
            if result is not None:
                counts[1] += 1
                return result ^ sign
            index_f = f >> 1
            index_g = g >> 1
            index_h = h >> 1
            level = levels[index_f]
            level_g = levels[index_g]
            level_h = levels[index_h]
            f_top = level
            if level_g < level:
                level = level_g
            if level_h < level:
                level = level_h
            if f_top == level:
                s = f & 1
                f_low = lows[index_f] ^ s
                f_high = highs[index_f] ^ s
            else:
                f_low = f_high = f
            if level_g == level:
                g_low = lows[index_g]
                g_high = highs[index_g]
            else:
                g_low = g_high = g
            if level_h == level:
                s = h & 1
                h_low = lows[index_h] ^ s
                h_high = highs[index_h] ^ s
            else:
                h_low = h_high = h
            low = _ite(f_low, g_low, h_low)
            high = _ite(f_high, g_high, h_high)
            result = low if low == high else _mk(level, low, high)
            ite_cache[key] = result
            return result ^ sign

        def _exists(node: int, mask: int, maxlevel: int, tag: int) -> int:
            if node <= 1:
                return node
            if governor_cell[0] is not None:
                governor_cell[0].tick()
            index = node >> 1
            level = levels[index]
            if level > maxlevel:
                return node
            key = (tag << (REF_BITS + 1)) | node
            result = quant_cache.get(key)
            if result is not None:
                return result
            sign = node & 1
            low = lows[index] ^ sign
            high = highs[index] ^ sign
            low_q = _exists(low, mask, maxlevel, tag)
            if (mask >> level) & 1:
                if low_q == 0:  # short-circuit: ∃x. f is already TRUE
                    result = 0
                else:
                    high_q = _exists(high, mask, maxlevel, tag)
                    result = _and(low_q ^ 1, high_q ^ 1) ^ 1
            else:
                high_q = _exists(high, mask, maxlevel, tag)
                result = low_q if low_q == high_q else _mk(level, low_q, high_q)
            quant_cache[key] = result
            return result

        def _and_exists(
            a: int, b: int, mask: int, maxlevel: int, tag: int, cache: dict[int, int]
        ) -> int:
            counts[0] += 1
            if governor_cell[0] is not None:
                governor_cell[0].tick()
            if a == 1 or b == 1 or a ^ b == 1:
                return 1
            if a == 0:
                return _exists(b, mask, maxlevel, tag)
            if b == 0 or a == b:
                return _exists(a, mask, maxlevel, tag)
            if a > b:
                a, b = b, a
            index_a = a >> 1
            index_b = b >> 1
            level_a = levels[index_a]
            level_b = levels[index_b]
            level = level_a if level_a <= level_b else level_b
            if level > maxlevel:
                # Below every quantified variable: a plain conjunction.
                return _and(a, b)
            key = (a << REF_BITS) | b
            result = cache.get(key)
            if result is not None:
                counts[1] += 1
                return result
            if level_a <= level_b:
                sign = a & 1
                low_a = lows[index_a] ^ sign
                high_a = highs[index_a] ^ sign
            else:
                low_a = high_a = a
            if level_b <= level_a:
                sign = b & 1
                low_b = lows[index_b] ^ sign
                high_b = highs[index_b] ^ sign
            else:
                low_b = high_b = b
            low = _and_exists(low_a, low_b, mask, maxlevel, tag, cache)
            if (mask >> level) & 1:
                if low == 0:  # ∃-level short-circuit: already TRUE
                    result = 0
                else:
                    high = _and_exists(high_a, high_b, mask, maxlevel, tag, cache)
                    result = _and(low ^ 1, high ^ 1) ^ 1
            else:
                high = _and_exists(high_a, high_b, mask, maxlevel, tag, cache)
                if low == high:
                    result = low
                else:  # inlined _mk, as in _and
                    sign = high & 1
                    if sign:
                        low ^= 1
                        high ^= 1
                    node_key = ((low << REF_BITS) | high) << LEVEL_BITS | level
                    index = unique.get(node_key)
                    if index is None:
                        index = len(levels)
                        if index >= MAX_NODES:
                            raise ArenaCapacityError(_CAPACITY_MESSAGE)
                        levels.append(level)
                        lows.append(low)
                        highs.append(high)
                        unique[node_key] = index
                    result = (index << 1) | sign
            cache[key] = result
            return result

        self._mk = _mk
        self._and = _and
        self._ite = _ite
        self._exists_kernel = _exists
        self._and_exists_kernel = _and_exists

    # -- variables -----------------------------------------------------------

    def add_variable(self, name: str) -> int:
        """Append a variable at the end of the order; returns its level."""
        if name in self._var_levels:
            raise ValueError(f"variable {name!r} already declared")
        level = len(self._var_names)
        if level >= TERMINAL_LEVEL:
            raise ArenaCapacityError(
                f"arena backend supports at most {TERMINAL_LEVEL} variables"
            )
        self._var_names.append(name)
        self._var_levels[name] = level
        # The apply kernels recurse one frame per level; keep CPython's limit
        # comfortably above the deepest possible chain.
        limit = 4 * (level + 1) + 1000
        if sys.getrecursionlimit() < limit:
            sys.setrecursionlimit(limit)
        return level

    @property
    def variable_names(self) -> tuple[str, ...]:
        return tuple(self._var_names)

    def level_of(self, name: str) -> int:
        try:
            return self._var_levels[name]
        except KeyError:
            raise KeyError(f"unknown variable {name!r}") from None

    def name_of(self, level: int) -> str:
        return self._var_names[level]

    def var_count(self) -> int:
        return len(self._var_names)

    def node_count(self) -> int:
        return len(self._levels) - 1

    # -- statistics ----------------------------------------------------------

    def statistics(self) -> BDDStatistics:
        # The table is append-only between collections, so the historical
        # peak only needs refreshing here and at sweep time.
        live = self.node_count()
        if live > self._peak_nodes:
            self._peak_nodes = live
        return BDDStatistics(
            var_count=len(self._var_names),
            node_count=live,
            peak_node_count=self._peak_nodes,
            ite_calls=self._counts[0],
            ite_cache_hits=self._counts[1],
            neg_calls=self._neg_calls,
            # Complement edges make every negation a cache-free bit flip;
            # reported as hits so dashboards show a 100% hit rate.
            neg_cache_hits=self._neg_calls,
            rename_fast_paths=self._rename_fast,
            cache_entries=(
                len(self._and_cache)
                + len(self._ite_cache)
                + len(self._quant_cache)
                + len(self._rename_cache)
                + len(self._restrict_cache)
            ),
            gc_runs=self._gc_runs,
            nodes_reclaimed=self._reclaimed,
        )

    def clear_caches(self) -> None:
        # In place: the compiled kernels hold references to these dicts.
        self._and_cache.clear()
        self._ite_cache.clear()
        self._quant_cache.clear()
        self._rename_cache.clear()
        self._restrict_cache.clear()

    def set_governor(self, governor: object | None) -> None:
        """Attach/detach a cooperative resource governor (see the protocol).

        The compiled kernels close over a one-slot box, so attaching costs no
        recompilation and the ungoverned path stays a single ``None`` check
        per frame.  A ``BudgetExceeded`` raised mid-kernel unwinds through
        hash-consed partial results only — the arena stays consistent.
        """
        self._governor_cell[0] = governor

    # -- node construction ---------------------------------------------------

    def var_node(self, name: str) -> int:
        return self._mk(self._var_levels[name], self.FALSE, self.TRUE)

    def nvar_node(self, name: str) -> int:
        return self.var_node(name) ^ 1

    # -- boolean operations --------------------------------------------------

    def neg(self, node: int) -> int:
        self._neg_calls += 1
        return node ^ 1

    def conj(self, a: int, b: int) -> int:
        return self._and(a, b)

    def disj(self, a: int, b: int) -> int:
        return self._and(a ^ 1, b ^ 1) ^ 1

    def implies(self, a: int, b: int) -> int:
        return self._and(a, b ^ 1) ^ 1

    def xor(self, a: int, b: int) -> int:
        return self._ite(a, b ^ 1, b)

    def iff(self, a: int, b: int) -> int:
        return self._ite(a, b, b ^ 1)

    def ite(self, cond: int, then: int, other: int) -> int:
        return self._ite(cond, then, other)

    def conj_all(self, nodes: Iterable[int]) -> int:
        result = self.TRUE
        for node in nodes:
            result = self._and(result, node)
            if result == self.FALSE:
                return result
        return result

    def disj_all(self, nodes: Iterable[int]) -> int:
        result = self.FALSE
        for node in nodes:
            result = self._and(result ^ 1, node ^ 1) ^ 1
            if result == self.TRUE:
                return result
        return result

    # -- quantification ------------------------------------------------------

    def _quant_info(self, names: Iterable[str]) -> tuple[int, int, int] | None:
        """``(tag, level bitmask, max level)`` for a quantified name set."""
        level_set = frozenset(self._var_levels[name] for name in names)
        if not level_set:
            return None
        info = self._quant_tags.get(level_set)
        if info is None:
            mask = 0
            for level in level_set:
                mask |= 1 << level
            info = (len(self._quant_tags), mask, max(level_set))
            self._quant_tags[level_set] = info
        return info

    def exists(self, node: int, names: Iterable[str]) -> int:
        info = self._quant_info(names)
        if info is None or node <= 1:
            return node
        tag, mask, maxlevel = info
        return self._exists_kernel(node, mask, maxlevel, tag)

    def forall(self, node: int, names: Iterable[str]) -> int:
        info = self._quant_info(names)
        if info is None or node <= 1:
            return node
        tag, mask, maxlevel = info
        return self._exists_kernel(node ^ 1, mask, maxlevel, tag) ^ 1

    def and_exists(
        self,
        a: int,
        b: int,
        names: Iterable[str],
        cache: dict | None = None,
    ) -> int:
        """``∃ names. a ∧ b`` without materialising the conjunction.

        ``cache`` follows the dict backend's contract: an opaque caller-owned
        memo reusable across calls with the *same* quantified set.
        """
        info = self._quant_info(names)
        if info is None:
            return self._and(a, b)
        tag, mask, maxlevel = info
        return self._and_exists_kernel(
            a, b, mask, maxlevel, tag, cache if cache is not None else {}
        )

    # -- substitution --------------------------------------------------------

    def rename(self, node: int, mapping: Mapping[str, str]) -> int:
        """Substitute variables for variables (the solver's x/y flip).

        The linear structural pass is attempted optimistically — it validates
        the order along every edge it rebuilds and reports a violation
        instead of walking the support up front; only genuinely
        order-breaking mappings pay for the general ``ite``-composition path.
        """
        if node <= 1 or not mapping:
            return node
        items = tuple(sorted(mapping.items()))
        memo_key = (node, items)
        cached = self._rename_cache.get(memo_key)
        if cached is not None:
            return cached
        level_map = {
            self._var_levels[source]: self._var_levels[target]
            for source, target in mapping.items()
        }
        result = self._rename_structural(node, level_map)
        if result is None:
            result = self._rename_general(node, level_map)
        else:
            self._rename_fast += 1
        self._rename_cache[memo_key] = result
        return result

    def _rename_structural(self, node: int, level_map: Mapping[int, int]) -> int | None:
        """Optimistic linear bottom-up rebuild.

        Returns ``None`` when the mapping breaks the variable order along
        some edge of this DAG (a rebuilt child's top level would not stay
        strictly below its parent's image) — the caller must then use the
        general path.  Nodes constructed before detection are valid, merely
        unreferenced.
        """
        levels = self._levels
        lows = self._lows
        highs = self._highs
        mk = self._mk
        image = level_map.get
        rebuilt: dict[int, int] = {0: 0}  # index -> regular rebuilt ref
        stack = [node >> 1]
        while stack:
            index = stack[-1]
            if index in rebuilt:
                stack.pop()
                continue
            low = lows[index]
            high = highs[index]
            low_index = low >> 1
            high_index = high >> 1
            pending = False
            if low_index not in rebuilt:
                stack.append(low_index)
                pending = True
            if high_index not in rebuilt:
                stack.append(high_index)
                pending = True
            if pending:
                continue
            stack.pop()
            level = levels[index]
            new_level = image(level, level)
            new_low = rebuilt[low_index] ^ (low & 1)
            new_high = rebuilt[high_index] ^ (high & 1)
            if new_low > 1 and levels[new_low >> 1] <= new_level:
                return None
            if new_high > 1 and levels[new_high >> 1] <= new_level:
                return None
            rebuilt[index] = mk(new_level, new_low, new_high)
        return rebuilt[node >> 1] ^ (node & 1)

    def _rename_general(self, node: int, level_map: Mapping[int, int]) -> int:
        """Shannon expansion per node: if x' then f|x=1 else f|x=0."""
        rebuilt: dict[int, int] = {}

        def go(ref: int) -> int:
            if ref <= 1:
                return ref
            index = ref >> 1
            cached = rebuilt.get(index)
            if cached is None:
                level = self._levels[index]
                new_level = level_map.get(level, level)
                literal = self._mk(new_level, 1, 0)
                cached = self._ite(
                    literal, go(self._highs[index]), go(self._lows[index])
                )
                rebuilt[index] = cached
            return cached ^ (ref & 1)

        return go(node)

    def restrict(self, node: int, assignment: Mapping[str, bool]) -> int:
        if node <= 1 or not assignment:
            return node
        items = tuple(sorted(assignment.items()))
        memo_key = (node, items)
        cached = self._restrict_cache.get(memo_key)
        if cached is not None:
            return cached
        values = {self._var_levels[name]: value for name, value in assignment.items()}
        rebuilt: dict[int, int] = {}

        def go(ref: int) -> int:
            if ref <= 1:
                return ref
            index = ref >> 1
            done = rebuilt.get(index)
            if done is None:
                level = self._levels[index]
                if level in values:
                    done = go(
                        self._highs[index] if values[level] else self._lows[index]
                    )
                else:
                    done = self._mk(
                        level, go(self._lows[index]), go(self._highs[index])
                    )
                rebuilt[index] = done
            return done ^ (ref & 1)

        result = go(node)
        self._restrict_cache[memo_key] = result
        return result

    def cofactor(self, node: int, name: str, value: bool) -> int:
        return self.restrict(node, {name: value})

    # -- inspection ----------------------------------------------------------

    def evaluate(self, node: int, assignment: Mapping[str, bool]) -> bool:
        current = node
        while current > 1:
            index = current >> 1
            sign = current & 1
            name = self._var_names[self._levels[index]]
            child = self._highs[index] if assignment.get(name, False) else self._lows[index]
            current = child ^ sign
        return current == self.TRUE

    def _support_levels(self, node: int) -> set[int]:
        seen: set[int] = set()
        found: set[int] = set()
        stack = [node >> 1]
        while stack:
            index = stack.pop()
            if index == 0 or index in seen:
                continue
            seen.add(index)
            found.add(self._levels[index])
            stack.append(self._lows[index] >> 1)
            stack.append(self._highs[index] >> 1)
        return found

    def support(self, node: int) -> set[str]:
        return {self._var_names[level] for level in self._support_levels(node)}

    def dag_size(self, node: int, limit: int | None = None) -> int:
        seen: set[int] = set()
        stack = [node >> 1]
        while stack:
            index = stack.pop()
            if index == 0 or index in seen:
                continue
            seen.add(index)
            if limit is not None and len(seen) > limit:
                return limit + 1
            stack.append(self._lows[index] >> 1)
            stack.append(self._highs[index] >> 1)
        return len(seen)

    def pick_assignment(self, node: int) -> dict[str, bool] | None:
        if node == self.FALSE:
            return None
        assignment: dict[str, bool] = {}
        current = node
        while current > 1:
            index = current >> 1
            sign = current & 1
            low = self._lows[index] ^ sign
            high = self._highs[index] ^ sign
            name = self._var_names[self._levels[index]]
            if low != self.FALSE:
                assignment[name] = False
                current = low
            else:
                assignment[name] = True
                current = high
        return assignment

    def _level(self, node: int) -> int:
        """Level of a reference; terminals sort below every variable."""
        if node <= 1:
            return len(self._var_names)
        return self._levels[node >> 1]

    def count_assignments(self, node: int, over: Sequence[str] | None = None) -> int:
        names = list(over) if over is not None else list(self._var_names)
        levels = sorted(self._var_levels[name] for name in names)
        position = {level: i for i, level in enumerate(levels)}
        cache: dict[int, int] = {}

        def count(current: int) -> int:
            if current == self.FALSE:
                return 0
            if current == self.TRUE:
                return 1
            cached = cache.get(current)
            if cached is None:
                index = current >> 1
                sign = current & 1
                level = self._levels[index]
                if level not in position:
                    raise ValueError(
                        f"node depends on variable {self._var_names[level]!r} "
                        "not included in the count"
                    )
                low = self._lows[index] ^ sign
                high = self._highs[index] ^ sign
                cached = count(low) * _gap(level, low) + count(high) * _gap(level, high)
                cache[current] = cached
            return cached

        def _gap(level: int, child: int) -> int:
            child_level = self._level(child)
            upper = position[level]
            lower = len(levels) if child <= 1 else position.get(child_level, len(levels))
            return 2 ** (lower - upper - 1)

        if node <= 1:
            return 2 ** len(levels) if node == self.TRUE else 0
        leading = position.get(self._level(node), 0)
        return count(node) * (2 ** leading)

    def iter_assignments(self, node: int, over: Sequence[str]) -> Iterator[dict[str, bool]]:
        names = list(over)

        def go(current: int, index: int, partial: dict[str, bool]) -> Iterator[dict[str, bool]]:
            if current == self.FALSE:
                return
            if index == len(names):
                if current == self.TRUE:
                    yield dict(partial)
                return
            name = names[index]
            level = self._var_levels[name]
            if self._level(current) == level:
                node_index = current >> 1
                sign = current & 1
                low = self._lows[node_index] ^ sign
                high = self._highs[node_index] ^ sign
                partial[name] = False
                yield from go(low, index + 1, partial)
                partial[name] = True
                yield from go(high, index + 1, partial)
                del partial[name]
            else:
                partial[name] = False
                yield from go(current, index + 1, partial)
                partial[name] = True
                yield from go(current, index + 1, partial)
                del partial[name]

        yield from go(node, 0, {})

    # -- garbage collection --------------------------------------------------

    def add_gc_hook(
        self,
        roots: Callable[[], Iterable[int]],
        remap: Callable[[dict[int, int]], None],
    ) -> None:
        """Register a GC participant (same contract as the dict backend)."""
        self._gc_hooks.append((roots, remap))

    def garbage_collect(self, roots: Iterable[int] = ()) -> dict[int, int]:
        """Drop every node not reachable from the roots; renumber the rest.

        Returns the relocation map old-ref → new-ref for every surviving
        reference in both polarities (clients index it directly).
        """
        root_refs = {int(node) for node in roots}
        for provider, _listener in self._gc_hooks:
            root_refs.update(int(node) for node in provider())

        marked = bytearray(len(self._levels))
        marked[0] = 1
        lows = self._lows
        highs = self._highs
        stack = [ref >> 1 for ref in root_refs if ref > 1]
        while stack:
            index = stack.pop()
            if marked[index]:
                continue
            marked[index] = 1
            low = lows[index] >> 1
            if not marked[low]:
                stack.append(low)
            high = highs[index] >> 1
            if not marked[high]:
                stack.append(high)

        before = self.node_count()
        if before > self._peak_nodes:
            self._peak_nodes = before
        if _np is not None:
            remap = self._sweep_numpy(marked)
        else:
            remap = self._sweep_python(marked)
        self._reclaimed += before - self.node_count()
        self._gc_runs += 1
        self.generation += 1
        self.clear_caches()
        # The arrays were replaced wholesale: rebind the kernels to them.
        self._compile_kernels()
        for _provider, listener in self._gc_hooks:
            listener(remap)
        return remap

    def _sweep_numpy(self, marked: bytearray) -> dict[int, int]:
        """Vectorised sweep: renumber via cumsum, recompute keys array-wide."""
        keep = _np.frombuffer(bytes(marked), dtype=_np.uint8).astype(bool)
        levels = _np.array(self._levels, dtype=_np.uint64)
        lows = _np.array(self._lows, dtype=_np.uint64)
        highs = _np.array(self._highs, dtype=_np.uint64)
        new_index = _np.cumsum(keep, dtype=_np.uint64) - 1
        # Children of surviving nodes always survive, so indexing the
        # renumbering with every row is safe (dead rows are filtered next).
        new_lows = (new_index[lows >> 1] << 1) | (lows & 1)
        new_highs = (new_index[highs >> 1] << 1) | (highs & 1)
        kept_levels = levels[keep]
        kept_lows = new_lows[keep]
        kept_highs = new_highs[keep]
        keys = ((kept_lows << _np.uint64(REF_BITS)) | kept_highs) << _np.uint64(
            LEVEL_BITS
        ) | kept_levels
        self._levels = kept_levels.tolist()
        self._lows = kept_lows.tolist()
        self._highs = kept_highs.tolist()
        self._lows[0] = 0
        self._highs[0] = 0
        self._unique = dict(zip(keys[1:].tolist(), range(1, len(self._levels))))
        surviving = _np.nonzero(keep)[0]
        new_regular = (new_index[surviving] << 1).tolist()
        remap: dict[int, int] = {}
        for old, new in zip((surviving << 1).tolist(), new_regular):
            remap[old] = new
            remap[old | 1] = new | 1
        return remap

    def _sweep_python(self, marked: bytearray) -> dict[int, int]:
        """Pure-Python sweep; identical results to :meth:`_sweep_numpy`."""
        new_index = [0] * len(self._levels)
        next_index = 0
        for index, keep in enumerate(marked):
            if keep:
                new_index[index] = next_index
                next_index += 1
        new_levels: list[int] = []
        new_lows: list[int] = []
        new_highs: list[int] = []
        unique: dict[int, int] = {}
        remap: dict[int, int] = {}
        for index, keep in enumerate(marked):
            if not keep:
                continue
            low = self._lows[index]
            high = self._highs[index]
            new_low = (new_index[low >> 1] << 1) | (low & 1)
            new_high = (new_index[high >> 1] << 1) | (high & 1)
            level = self._levels[index]
            fresh = len(new_levels)
            if fresh == 0:
                new_low = new_high = 0
            new_levels.append(level)
            new_lows.append(new_low)
            new_highs.append(new_high)
            if fresh > 0:
                unique[((new_low << REF_BITS) | new_high) << LEVEL_BITS | level] = fresh
            old_regular = index << 1
            new_regular = fresh << 1
            remap[old_regular] = new_regular
            remap[old_regular | 1] = new_regular | 1
        self._levels = new_levels
        self._lows = new_lows
        self._highs = new_highs
        self._unique = unique
        return remap

    def translate(self, remap: Mapping[int, int], node: int) -> int:
        """Map a pre-collection reference through a relocation map."""
        return remap[node]

    # -- wrapper construction ------------------------------------------------

    def false(self) -> BDD:
        return BDD(self, self.FALSE)

    def true(self) -> BDD:
        return BDD(self, self.TRUE)

    def variable(self, name: str) -> BDD:
        return BDD(self, self.var_node(name))

    def wrap(self, node: int) -> BDD:
        return BDD(self, node)
