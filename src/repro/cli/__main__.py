"""``python -m repro.cli`` — the console entry point from a source checkout."""

import sys

from repro.cli.main import main

if __name__ == "__main__":
    sys.exit(main())
