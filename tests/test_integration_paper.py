"""Integration tests reproducing the worked examples of the paper end to end."""

import pytest

from repro.analysis import Analyzer, check_containment, check_satisfiability
from repro.logic.cyclefree import is_cycle_free
from repro.logic.syntax import formula_size
from repro.xmltypes.binarize import binarize_dtd
from repro.xmltypes.library import smil_dtd, wikipedia_dtd, xhtml_core_dtd
from repro.xpath.compile import compile_xpath
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import select

from conftest import assert_genuine_counterexample

#: The benchmark queries of Figure 21 (``//`` is the paper's shorthand for
#: ``/desc-or-self::*/``; e10 uses the parenthesised union).
FIGURE_21 = {
    1: "/a[.//b[c/*//d]/b[c//d]/b[c/d]]",
    2: "/a[.//b[c/*//d]/b[c/d]]",
    3: "a/b//c/foll-sibling::d/e",
    4: "a/b//d[prec-sibling::c]/e",
    5: "a/c/following::d/e",
    6: "a/b[//c]/following::d/e ∩ a/d[preceding::c]/e",
    7: "*//switch[ancestor::head]//seq//audio[prec-sibling::video]",
    8: "descendant::a[ancestor::a]",
    9: "/descendant::*",
    10: "html/(head | body)",
    11: "html/head/descendant::*",
    12: "html/body/descendant::*",
}


def test_all_figure21_expressions_translate_linearly():
    # Proposition 5.1(2) and 5.1(3) over the full benchmark set.
    for text in FIGURE_21.values():
        formula = compile_xpath(text)
        assert is_cycle_free(formula)
        assert formula_size(formula) <= 40 * (len(text) + 1)


def test_figure18_containment_example():
    """The worked example of Section 6.3: e1 ⊄ e2, counterexample of depth 3."""
    result = check_containment(
        "child::c/preceding-sibling::a[child::b]", "child::c[child::b]"
    )
    assert not result.holds
    document = assert_genuine_counterexample(result)
    # The counterexample has the shape of Figure 18: a marked context node
    # whose children include an `a` (with a `b` child) followed by a `c`.
    assert document.depth() == 3
    labels = [child.label for child in document.children]
    assert "a" in labels and "c" in labels
    # And it genuinely separates the queries under the denotational semantics.
    selected_by_first = select(
        parse_xpath("child::c/preceding-sibling::a[child::b]"), document
    )
    selected_by_second = select(parse_xpath("child::c[child::b]"), document)
    assert selected_by_first and not (selected_by_first <= selected_by_second)


def test_table2_row1_e1_contains_e2_but_not_conversely():
    assert check_containment(FIGURE_21[1], FIGURE_21[2]).holds
    assert not check_containment(FIGURE_21[2], FIGURE_21[1]).holds


def test_table2_row2_e3_and_e4_are_equivalent():
    assert check_containment(FIGURE_21[4], FIGURE_21[3]).holds
    assert check_containment(FIGURE_21[3], FIGURE_21[4]).holds


def test_table2_row3_e6_versus_e5():
    # With e5 exactly as printed in Figure 21 the containment fails and the
    # solver exhibits a counterexample (see EXPERIMENTS.md).
    as_printed = check_containment(FIGURE_21[6], FIGURE_21[5])
    assert not as_printed.holds
    assert_genuine_counterexample(as_printed)
    # ``[//c]`` now follows XPath 1.0 and anchors at the *document root*, so
    # the printed e6 admits documents whose ``c`` lies outside the ``a``
    # subtree and is not contained in the descendant variant of e5 either.
    assert not check_containment(FIGURE_21[6], "a//c/following::d/e").holds
    # Table 2's verdict corresponds to the relative reading of the qualifier,
    # which is written ``.//c`` in XPath: under it the containment holds.
    relative_reading = "a/b[.//c]/following::d/e ∩ a/d[preceding::c]/e"
    assert check_containment(relative_reading, "a//c/following::d/e").holds
    # The reverse containment does not hold in either reading (e5 ⊄ e6).
    assert not check_containment("a//c/following::d/e", FIGURE_21[6]).holds
    assert not check_containment("a//c/following::d/e", relative_reading).holds


@pytest.mark.slow
def test_table2_row4_e7_satisfiable_under_smil():
    result = check_satisfiability(FIGURE_21[7], smil_dtd())
    assert result.holds
    assert_genuine_counterexample(result, smil_dtd(), exprs=(FIGURE_21[7],))


@pytest.mark.slow
def test_table2_row5_e8_satisfiable_under_xhtml_core():
    # The official XHTML DTD does not syntactically prohibit nested anchors.
    result = check_satisfiability(FIGURE_21[8], xhtml_core_dtd())
    assert result.holds


def test_wikipedia_pipeline_of_figures_12_to_14():
    dtd = wikipedia_dtd()
    grammar = binarize_dtd(dtd).restricted_to_reachable()
    assert grammar.labels() == set(dtd.element_names())
    analyzer = Analyzer()
    # A query consistent with the DTD is satisfiable under it...
    assert analyzer.satisfiability("child::meta/child::title", dtd).holds
    # ...and the satisfying document produced by the solver validates.
    result = analyzer.satisfiability("child::meta/child::title", dtd)
    assert_genuine_counterexample(result, dtd, exprs=("child::meta/child::title",))
    # A query structurally impossible under the DTD is reported empty.
    assert analyzer.emptiness("child::title/child::meta", dtd).holds
    assert analyzer.emptiness("child::meta/child::edit", dtd).holds


def test_type_constrained_containment_wikipedia():
    dtd = wikipedia_dtd()
    # Under the DTD, every history child of meta contains at least one edit.
    assert check_containment(
        "child::history", "child::history[edit]", type1=dtd, type2=dtd
    ).holds
