"""The persistent solve cache: cold processes start warm.

Runs the same small workload through two analyzer instances sharing one
cache directory — a stand-in for two *processes* (the content addressing is
alpha-invariant, so the demonstration is faithful: the second instance
re-translates every query to formulas with different fresh recursion
variables and still hits every disk entry).  Then replays the workload
through two actual ``repro serve`` subprocesses to show the CLI side.

Run with:  PYTHONPATH=src python examples/persistent_cache.py
"""

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.api import Query, StaticAnalyzer

WORKLOAD = [
    Query.containment("child::a[b]", "child::a"),
    Query.containment(".//img", ".//img[@alt]", "xhtml-core", "xhtml-core"),
    Query.satisfiability("child::meta/child::title", "wikipedia"),
    Query.equivalence("a/b//c/foll-sibling::d/e", "a/b//d[prec-sibling::c]/e"),
]


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-cache-demo-") as cache_dir:
        print(f"cache directory: {cache_dir}\n")

        first = StaticAnalyzer(cache_dir=cache_dir)
        report = first.solve_many(WORKLOAD)
        print("first analyzer (cold cache):")
        print(f"  solver runs:       {report.solver_runs}")
        print(f"  verdicts:          {[o.holds for o in report.outcomes]}")
        print(f"  entries written:   {first.disk_cache_writes}")

        second = StaticAnalyzer(cache_dir=cache_dir)
        replay = second.solve_many(WORKLOAD)
        print("second analyzer (same directory, cold memory):")
        print(f"  solver runs:       {replay.solver_runs}   <- the point")
        print(f"  disk cache hits:   {replay.disk_cache_hits}")
        print(f"  verdicts:          {[o.holds for o in replay.outcomes]}")
        assert replay.solver_runs == 0
        assert [o.holds for o in replay.outcomes] == [o.holds for o in report.outcomes]

        # The same effect through the CLI: stream a request at `repro serve`
        # twice, in two separate OS processes sharing the cache directory.
        request = json.dumps(
            # A problem the analyzers above did not cache, so the first serve
            # process really runs the solver and the second answers from disk.
            {"id": 1, "kind": "overlap", "exprs": ["a//b", "a/b"]}
        )
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        for attempt in ("cold", "warm"):
            process = subprocess.run(
                [sys.executable, "-m", "repro.cli", "serve", "--cache-dir", cache_dir],
                input=request + "\n" + json.dumps({"op": "stats"}) + "\n",
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            responses = [json.loads(line) for line in process.stdout.splitlines()]
            stats = responses[-1]["stats"]
            print(
                f"repro serve ({attempt} process): solver_runs={stats['solver_runs']} "
                f"disk_cache_hits={stats['disk_cache_hits']}"
            )


if __name__ == "__main__":
    main()
