"""Unit and property tests for the binary (first-child / next-sibling) encoding."""

from hypothesis import given, strategies as st

from repro.trees.binary import BinTree, binary_forest_to_unranked, to_binary, to_unranked
from repro.trees.unranked import Tree, parse_tree


def test_single_node_encoding():
    binary = to_binary(parse_tree("<a/>"))
    assert binary == BinTree("a", None, None, False)


def test_children_become_left_spine():
    binary = to_binary(parse_tree("<a><b/><c/><d/></a>"))
    assert binary.label == "a"
    assert binary.right is None
    assert binary.left.label == "b"
    assert binary.left.right.label == "c"
    assert binary.left.right.right.label == "d"
    assert binary.left.left is None


def test_round_trip_simple():
    document = parse_tree("<a><b><e/></b><c/><d><f/><g/></d></a>")
    assert to_unranked(to_binary(document)) == document


def test_marks_preserved():
    document = parse_tree("<a><b!/><c/></a>")
    binary = to_binary(document)
    assert binary.mark_count() == 1
    assert to_unranked(binary).mark_count() == 1


def test_size_is_preserved():
    document = parse_tree("<a><b><e/></b><c/></a>")
    assert to_binary(document).size() == document.size()


def test_forest_decoding():
    forest = binary_forest_to_unranked(BinTree("a", None, BinTree("b", None, None)))
    assert [tree.label for tree in forest] == ["a", "b"]


# -- property-based: encoding and decoding are mutually inverse -------------------

_LABELS = st.sampled_from(["a", "b", "c", "d"])


def _trees(max_depth: int = 3):
    return st.recursive(
        st.builds(Tree, _LABELS, st.just(()), st.booleans()),
        lambda children: st.builds(
            Tree, _LABELS, st.lists(children, max_size=3).map(tuple), st.booleans()
        ),
        max_leaves=8,
    )


@given(_trees())
def test_round_trip_property(document):
    assert to_unranked(to_binary(document)) == document


@given(_trees())
def test_binary_size_matches_unranked_size(document):
    assert to_binary(document).size() == document.size()
