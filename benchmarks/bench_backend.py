"""BDD-backend ablation — dict-of-tuples vs packed-array arena.

Runs the nested-containment scaling family once per engine registered in
:data:`repro.bdd.backends.BACKENDS` and records what each spent: wall clock
(min over repetitions with collector control), ternary-operation counts and
peak node counts.  Verdicts, fixpoint iteration counts and relational-product
counts are asserted identical inside the runner — the backends are
observationally equivalent through the :class:`repro.bdd.protocol.BDDBackend`
protocol, and this benchmark measures only what that equivalence costs.
The measurement lives in :func:`repro.cli.bench.run_backend`, shared with
``repro bench backend``.
"""

from conftest import write_bench_json, write_report
from repro.cli.bench import BACKEND_ITE_CALLS_MAX_DEPTH3, run_backend


def test_backend_ablation(benchmark):
    payload = benchmark.pedantic(run_backend, rounds=1, iterations=1)
    rows = payload["rows"]
    report = ["BDD backend ablation: dict vs arena on the scaling rows"]
    for row in rows:
        columns = row["backends"]
        cells = " | ".join(
            f"{name}: {column['solve_seconds']:.3f}s "
            f"ite={column['bdd_ite_calls']} peak={column['bdd_peak_node_count']}"
            for name, column in columns.items()
        )
        speedup = row.get("arena_speedup")
        report.append(
            f"depth {row['depth']}: {cells}"
            + (f" | arena speedup {speedup}x" if speedup is not None else "")
        )
    # Every committed ceiling names a registered backend that produced rows.
    for name in BACKEND_ITE_CALLS_MAX_DEPTH3:
        assert name in rows[0]["backends"]
    # The arena's structural advantage is its packed node table: never more
    # peak nodes than the dict engine on the deep rows.
    for row in rows:
        if row["depth"] >= 3 and {"dict", "arena"} <= set(row["backends"]):
            assert (
                row["backends"]["arena"]["bdd_peak_node_count"]
                <= row["backends"]["dict"]["bdd_peak_node_count"]
            )
    write_report("backend_ablation", report)
    write_bench_json("backend", payload)
