"""Type-constrained analysis with the Wikipedia DTD (Figures 12-14 of the paper).

Shows the whole regular-tree-type pipeline — DTD, binary type grammar, Lµ
formula — and uses the type as a constraint for XPath decision problems
(Section 8): satisfiability, emptiness and containment *under* a DTD.

Run with::

    python examples/wikipedia_types.py
"""

from repro import Analyzer, builtin_dtd, dtd_accepts, serialize_tree
from repro.logic.printer import format_formula_pretty
from repro.xmltypes.binarize import binarize_dtd
from repro.xmltypes.compile import compile_grammar


def main() -> None:
    dtd = builtin_dtd("wikipedia")
    print(f"Wikipedia DTD fragment: {dtd.symbol_count()} element symbols, root <{dtd.root}>")
    print()

    # Figure 13: the binary encoding of the DTD.
    grammar = binarize_dtd(dtd).restricted_to_reachable()
    print("binary tree type grammar (Figure 13):")
    print(grammar.describe())
    print()

    # Figure 14: the Lµ formula of the type.
    print("Lµ formula (Figure 14):")
    print(format_formula_pretty(compile_grammar(grammar)))
    print()

    analyzer = Analyzer()

    # Queries consistent with the DTD are satisfiable under it, and the solver
    # produces a witness document that really validates.
    satisfiable = analyzer.satisfiability("child::meta/child::history/child::edit", dtd)
    print(satisfiable.describe())
    witness = satisfiable.counterexample
    print("witness document:", serialize_tree(witness))
    print("witness validates against the DTD:", dtd_accepts(dtd, witness.unmark_all()))
    print()

    # Queries that contradict the DTD are reported empty.
    print(analyzer.emptiness("child::title/child::meta", dtd).describe())
    print(analyzer.emptiness("child::meta[redirect]", dtd).describe())
    print()

    # Containment that only holds thanks to the type constraint: every history
    # element has at least one edit child.
    with_type = analyzer.containment(
        "child::history", "child::history[edit]", type1=dtd, type2=dtd
    )
    without_type = analyzer.containment("child::history", "child::history[edit]")
    print("under the DTD:   ", with_type.describe())
    print("without the DTD: ", without_type.describe())


if __name__ == "__main__":
    main()
