"""Attribute-aware analysis end to end: ATTLIST parsing, the attribute
propositions of the logic, attribute steps in XPath, type projection, and
counterexample documents carrying attributes."""

import pytest

from repro import (
    Analyzer,
    Query,
    StaticAnalyzer,
    parse_dtd,
    parse_tree,
    serialize_tree,
)
from repro.analysis.problems import (
    relevant_attributes,
    rooted,
    type_inclusion_attributes,
)
from repro.core.errors import ParseError
from repro.logic import syntax as sx
from repro.logic.closure import OTHER_ATTRIBUTE, lean
from repro.logic.negation import negate
from repro.logic.parser import parse_formula
from repro.logic.printer import format_formula
from repro.logic.semantics import satisfies
from repro.solver.explicit import ExplicitSolver
from repro.solver.symbolic import SymbolicSolver
from repro.trees.focus import focus_at
from repro.xmltypes.compile import attribute_constraints
from repro.xmltypes.dtd import IMPLIED, REQUIRED
from repro.xmltypes.library import smil_dtd, xhtml_core_dtd, xhtml_strict_dtd
from conftest import assert_genuine_counterexample
from repro.xpath import ast as xp
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import select

MINI_DTD = """
<!ELEMENT doc (a | img)*>
<!ELEMENT a (a | img)*>
<!ELEMENT img EMPTY>
<!ATTLIST a href CDATA #IMPLIED
            name CDATA #IMPLIED>
<!ATTLIST img src CDATA #REQUIRED
              alt CDATA #REQUIRED
              align (top|middle|bottom) "middle">
"""


@pytest.fixture(scope="module")
def mini():
    return parse_dtd(MINI_DTD, root="doc", name="mini")


# -- ATTLIST parsing -----------------------------------------------------------


def test_attlist_declarations_are_parsed(mini):
    a_attrs = {decl.name: decl for decl in mini.attributes_of("a")}
    assert set(a_attrs) == {"href", "name"}
    assert a_attrs["href"].default == IMPLIED and not a_attrs["href"].required

    img_attrs = {decl.name: decl for decl in mini.attributes_of("img")}
    assert img_attrs["src"].default == REQUIRED and img_attrs["src"].required
    assert img_attrs["align"].attribute_type == "enumeration"
    assert img_attrs["align"].values == ("top", "middle", "bottom")
    assert img_attrs["align"].value == "middle" and not img_attrs["align"].required

    assert mini.required_attributes("img") == ("src", "alt")
    assert mini.attribute_names() == ("align", "alt", "href", "name", "src")
    assert not mini.attributes_of("doc")


def test_attlist_default_value_may_contain_gt():
    # '>' is legal inside a quoted AttValue (XML 1.0); the declaration must
    # not be truncated at it.
    dtd = parse_dtd('<!ELEMENT a EMPTY>\n<!ATTLIST a title CDATA "x>y">', root="a")
    (declaration,) = dtd.attributes_of("a")
    assert declaration.name == "title" and declaration.value == "x>y"


def test_attlist_fixed_and_merging():
    dtd = parse_dtd(
        """
        <!ELEMENT r EMPTY>
        <!ATTLIST r xmlns CDATA #FIXED "urn:x">
        <!ATTLIST r id ID #IMPLIED xmlns CDATA #IMPLIED>
        """,
        root="r",
    )
    declarations = {decl.name: decl for decl in dtd.attributes_of("r")}
    # The first declaration of a name wins (XML 1.0 section 3.3).
    assert declarations["xmlns"].default == "#FIXED"
    assert declarations["xmlns"].value == "urn:x"
    assert set(declarations) == {"xmlns", "id"}


def test_attlists_survive_with_root(mini):
    rerooted = mini.with_root("a")
    assert rerooted.attributes_of("img") == mini.attributes_of("img")


def test_bundled_dtds_carry_real_attribute_lists():
    xhtml = xhtml_strict_dtd()
    assert xhtml.required_attributes("img") == ("src", "alt")
    assert xhtml.declares_attribute("a", "href")
    assert not xhtml.declares_attribute("br", "href")
    assert xhtml.declares_attribute("html", "xmlns")
    assert "xml:lang" in {decl.name for decl in xhtml.attributes_of("span")}
    assert xhtml_core_dtd().required_attributes("img") == ("src", "alt")
    # SMIL 1.0 requires href on anchors.
    assert smil_dtd().required_attributes("a") == ("href",)


# -- attribute propositions in the logic ---------------------------------------


def test_attribute_proposition_round_trips_through_printer_and_parser():
    formula = sx.mk_and(sx.prop("a"), sx.attr("href"))
    assert format_formula(formula) == "a & @href"
    assert parse_formula("a & @href") is formula
    assert parse_formula("~@href") is sx.nattr("href")
    assert parse_formula("@*") is sx.attr(sx.ANY_ATTRIBUTE)
    assert negate(sx.attr("x")) is sx.nattr("x")
    assert negate(sx.nattr(sx.ANY_ATTRIBUTE)) is sx.attr(sx.ANY_ATTRIBUTE)
    # Qualified names survive a print/parse round trip too.
    qualified = sx.mk_and(sx.prop("xsl:template"), sx.attr("xml:lang"))
    assert parse_formula(format_formula(qualified)) is qualified


def test_lean_allocates_attribute_bits_only_when_needed():
    plain = lean(sx.prop("a"))
    assert plain.attributes == ()
    with_attr = lean(sx.mk_and(sx.prop("a"), sx.attr("href")))
    assert with_attr.attributes == ("href", OTHER_ATTRIBUTE)
    wildcard_only = lean(sx.attr(sx.ANY_ATTRIBUTE))
    assert wildcard_only.attributes == (OTHER_ATTRIBUTE,)


def test_attribute_semantics_over_focused_trees():
    document = parse_tree('<r!><a href=""/><a/></r>')
    with_href = focus_at(document, (0,))
    without = focus_at(document, (1,))
    assert satisfies(sx.attr("href"), with_href)
    assert not satisfies(sx.attr("href"), without)
    assert satisfies(sx.attr(sx.ANY_ATTRIBUTE), with_href)
    assert satisfies(sx.nattr(sx.ANY_ATTRIBUTE), without)


def test_symbolic_and_explicit_solvers_agree_on_attribute_formulas():
    cases = [
        sx.mk_and(sx.prop("a"), sx.attr("x")),
        sx.mk_and(sx.attr("x"), sx.nattr("x")),
        sx.mk_and(sx.attr("x"), sx.nattr(sx.ANY_ATTRIBUTE)),
        sx.mk_and(sx.attr(sx.ANY_ATTRIBUTE), sx.nattr("x")),
        sx.mk_and(sx.prop("a"), sx.dia(1, sx.mk_and(sx.prop("b"), sx.attr("y")))),
    ]
    for formula in cases:
        symbolic = SymbolicSolver(formula).solve()
        explicit = ExplicitSolver(formula).solve()
        assert symbolic.satisfiable == explicit.satisfiable, format_formula(formula)
        if symbolic.satisfiable:
            assert symbolic.model is not None and explicit.model is not None


def test_wildcard_requires_an_actual_attribute_bit():
    # @* and "no attribute" are contradictory; @* with ¬@x is satisfiable via
    # the "other attribute" bit.
    assert not SymbolicSolver(
        sx.mk_and(sx.attr(sx.ANY_ATTRIBUTE), sx.nattr(sx.ANY_ATTRIBUTE))
    ).solve().satisfiable
    result = SymbolicSolver(
        sx.mk_and(sx.attr(sx.ANY_ATTRIBUTE), sx.nattr("x"))
    ).solve()
    assert result.satisfiable
    assert result.model.attributes == ("_",)


# -- attribute steps in XPath ---------------------------------------------------


def test_attribute_steps_parse():
    assert parse_xpath("a[@href]").path.qualifier == xp.QualifierPath(
        xp.AttributeStep("href")
    )
    assert parse_xpath("a/@href").path.second == xp.AttributeStep("href")
    assert parse_xpath("attribute::href") == parse_xpath("@href")
    assert parse_xpath("attribute::*") == parse_xpath("@*")
    assert parse_xpath("@xml:lang").path == xp.AttributeStep("xml:lang")


def test_attribute_step_must_be_trailing():
    with pytest.raises(ParseError, match="trailing"):
        parse_xpath("a/@href/b")
    with pytest.raises(ParseError, match="trailing"):
        parse_xpath("a[@href//b]")


def test_targeted_parse_errors():
    with pytest.raises(ParseError, match="positional predicates"):
        parse_xpath("a[1]")
    with pytest.raises(ParseError, match="outside the supported fragment"):
        parse_xpath("a[text()]")
    with pytest.raises(ParseError, match="attribute name"):
        parse_xpath("a[@]")
    with pytest.raises(ParseError, match="value comparisons"):
        parse_xpath('a[@href="x"]')


def test_attribute_selection_against_the_denotational_semantics():
    document = parse_tree('<doc!><a href=""><img src="" alt=""/></a><a/></doc>')
    selected = select(parse_xpath("a[@href]"), document)
    assert {focus.name for focus in selected} == {"a"}
    assert len(selected) == 1
    assert not select(parse_xpath("a[@nosuch]"), document)
    assert len(select(parse_xpath("a/img[@src and @alt]"), document)) == 1
    assert len(select(parse_xpath("a[not(@href)]"), document)) == 1
    assert len(select(parse_xpath(".//img/@src"), document)) == 1


def test_relevant_attributes_collects_names_and_wildcard():
    assert relevant_attributes("a[@href]", "//img[not(@alt)]") == ("alt", "href")
    assert relevant_attributes("a[@*]") == (OTHER_ATTRIBUTE,)
    assert relevant_attributes("a[b]") == ()


# -- type projection ------------------------------------------------------------


def test_attribute_constraints_projection(mini):
    constraints = attribute_constraints(mini, ("alt", "href"))
    # img requires alt; href is undeclared on img, forbidden.
    assert constraints["img"] is sx.mk_and(sx.attr("alt"), sx.nattr("href"))
    # a declares href (optional) but not alt.
    assert constraints["a"] is sx.nattr("alt")
    # doc declares nothing: both names forbidden.
    assert constraints["doc"] is sx.mk_and(sx.nattr("alt"), sx.nattr("href"))
    assert attribute_constraints(mini, ()) == {}


def test_attribute_constraints_wildcard_marker(mini):
    constraints = attribute_constraints(mini, (OTHER_ATTRIBUTE,))
    # img has required attributes outside the named alphabet: marker forced on.
    assert constraints["img"] is sx.attr(OTHER_ATTRIBUTE)
    # doc declares nothing at all: marker forced off.
    assert constraints["doc"] is sx.nattr(OTHER_ATTRIBUTE)
    # a declares only optional attributes outside the alphabet: marker free.
    assert "a" not in constraints


# -- decision problems ----------------------------------------------------------


def test_satisfiability_and_emptiness_with_attributes(mini):
    analyzer = Analyzer()
    result = analyzer.satisfiability(
        "//a[@href]", rooted(mini, relevant_attributes("//a[@href]"))
    )
    assert result.holds
    witness = assert_genuine_counterexample(result, mini, exprs=("//a[@href]",))
    assert 'href=""' in serialize_tree(witness)
    # The witness genuinely selects under the denotational semantics.
    assert select(parse_xpath("//a[@href]"), witness)
    # An attribute declared nowhere renders the query empty.
    assert analyzer.emptiness(
        "//a[@nosuch]", rooted(mini, relevant_attributes("//a[@nosuch]"))
    ).holds


def test_required_attribute_containment(mini):
    analyzer = Analyzer()
    alphabet = relevant_attributes("//img", "//img[@alt]")
    constrained = rooted(mini, alphabet)
    assert analyzer.containment(
        "//img", "//img[@alt]", type1=constrained, type2=constrained
    ).holds
    # Optional attributes do not support the containment; the counterexample
    # exhibits an anchor without href.
    alphabet = relevant_attributes("//a", "//a[@href]")
    constrained = rooted(mini, alphabet)
    result = analyzer.containment(
        "//a", "//a[@href]", type1=constrained, type2=constrained
    )
    assert not result.holds
    counterexample = assert_genuine_counterexample(
        result, mini, exprs=("//a", "//a[@href]")
    )
    selected_left = select(parse_xpath("//a"), counterexample)
    selected_right = select(parse_xpath("//a[@href]"), counterexample)
    assert selected_left and not (selected_left <= selected_right)


def test_required_attribute_is_never_absent(mini):
    analyzer = Analyzer()
    assert not analyzer.satisfiability(
        "//img[not(@alt)]", rooted(mini, ("alt",))
    ).holds
    assert not analyzer.satisfiability(
        "//img[not(@*)]", rooted(mini, relevant_attributes("//img[not(@*)]"))
    ).holds


def test_type_inclusion_respects_required_attributes(mini):
    # The negated output type is a predicate on subtrees, so its #REQUIRED
    # attributes matter even when the query never mentions them.
    analyzer = Analyzer()
    img_type = mini.with_root("img")
    # An attribute-free input admits an alt-less img: inclusion must fail.
    result = analyzer.type_inclusion(".//img[not(*)]", None, img_type)
    assert not result.holds
    # The same DTD as input supplies src/alt on every img: inclusion holds.
    assert analyzer.type_inclusion(".//img", mini, img_type).holds
    # The alphabet covers the DTDs' required and asymmetric declared names.
    alphabet = type_inclusion_attributes(".//img", mini, img_type)
    assert {"src", "alt"} <= set(alphabet)
    stripped = parse_dtd("<!ELEMENT img EMPTY>", root="img", name="bare")
    assert "href" in type_inclusion_attributes(".//img", mini, stripped)
    # The declared-name comparison is per element: the output declaring the
    # same name on a *different* element does not admit it on this one.
    input_dtd = parse_dtd(
        "<!ELEMENT doc (a)*><!ELEMENT a EMPTY><!ATTLIST a x CDATA #IMPLIED>",
        root="doc",
    )
    output_dtd = parse_dtd(
        "<!ELEMENT a (img)*><!ELEMENT img EMPTY><!ATTLIST img x CDATA #IMPLIED>",
        root="a",
    )
    assert "x" in type_inclusion_attributes(".//a", input_dtd, output_dtd)
    result = analyzer.type_inclusion(".//a", input_dtd, output_dtd)
    assert not result.holds  # <a x=""/> is valid input but invalid output
    # And the API façade agrees with the one-shot helper.
    outcome = StaticAnalyzer().solve(
        Query.type_inclusion(".//img[not(*)]", None, img_type)
    )
    assert not outcome.holds


def test_api_facade_answers_attribute_queries(mini):
    # Queries relative to the marked (typed) node: the type translation of
    # Section 5.2 leaves the context of the typed node unconstrained, so
    # absolute queries could select nodes outside the typed subtree.
    analyzer = StaticAnalyzer()
    report = analyzer.solve_many(
        [
            Query.containment(".//img", ".//img[@alt]", mini, mini),
            Query.satisfiability(".//a[@href]", mini),
            Query.emptiness(".//a[@nosuch]/a", mini),
        ]
    )
    containment, satisfiability, emptiness = report.outcomes
    assert containment.holds
    assert satisfiability.holds
    assert 'href=""' in satisfiability.counterexample
    # .//a[@nosuch]/a navigates below the attribute-less match: empty.
    assert emptiness.holds
    # The same queries again are answered entirely from the solve cache.
    again = analyzer.solve_many([Query.satisfiability(".//a[@href]", mini)])
    assert again.cache_hits == 1 and again.solver_runs == 0


def test_absolute_anchors_ignore_non_first_siblings():
    # Regression: "top level" must mean "no parent AND no previous sibling"
    # (transitively); ¬⟨1̄⟩⊤ alone also holds at every non-first sibling, which
    # used to anchor absolute paths at arbitrary inner nodes.
    from repro.logic.semantics import models_of
    from repro.trees.focus import all_focuses
    from repro.xpath.compile import compile_xpath
    from repro.xpath.semantics import evaluate_xpath

    for query, text in [
        (".//b[/c]", "<r!><a/><x><c/><b/></x></r>"),
        ("/c", "<r><a/><x><c!/></x></r>"),
        ("/x/c", "<r><a/><x><c!/></x></r>"),
        (".//b[//c]", "<r!><a/><x><c/><b/></x></r>"),
    ]:
        document = parse_tree(text)
        denotational = evaluate_xpath(
            parse_xpath(query), frozenset(all_focuses(document))
        )
        logical = models_of(compile_xpath(query), [document])
        assert denotational == logical, (query, text)


def test_absolute_qualifier_anchors_at_the_root():
    # a[//b] per XPath 1.0: the *document* must contain a b.
    document_without = parse_tree("<r!><x><a/></x></r>")
    assert not select(parse_xpath(".//a[//b]"), document_without)
    document_with = parse_tree("<r!><x><a/></x><b/></r>")
    assert select(parse_xpath(".//a[//b]"), document_with)
    # The translation agrees: a[//b] is satisfiable, a[//b] with a b-free
    # document type is not.
    analyzer = Analyzer()
    assert analyzer.satisfiability("//a[//b]").holds
    b_free = parse_dtd("<!ELEMENT r (a)*><!ELEMENT a EMPTY>", root="r")
    assert not analyzer.satisfiability("//a[//b]", rooted(b_free)).holds
    # The relative reading is strictly stronger than the absolute one.
    assert analyzer.containment(".//a[.//b]", ".//a[//b]").holds
    assert not analyzer.containment(".//a[//b]", ".//a[.//b]").holds


@pytest.mark.slow
def test_xhtml_core_attribute_analyses():
    analyzer = Analyzer()
    xhtml = xhtml_core_dtd()
    alphabet = relevant_attributes("//img", "//img[@alt]")
    constrained = rooted(xhtml, alphabet)
    assert analyzer.containment(
        "//img", "//img[@alt]", type1=constrained, type2=constrained
    ).holds
    # Anchors with href can still be nested under the (structural) XHTML
    # rules, through an intermediate inline element — the attribute-aware
    # variant of the paper's e8 analysis.
    nested = analyzer.satisfiability(
        "descendant::a[@href][ancestor::a[@href]]", rooted(xhtml, ("href",))
    )
    assert nested.holds
    assert 'href=""' in serialize_tree(nested.counterexample)


@pytest.mark.slow
def test_smil_requires_href_on_anchors():
    analyzer = Analyzer()
    smil = smil_dtd()
    assert not analyzer.satisfiability(
        "//a[not(@href)]", rooted(smil, ("href",))
    ).holds
    assert analyzer.satisfiability("//a[@href]", rooted(smil, ("href",))).holds
