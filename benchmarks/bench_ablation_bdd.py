"""Ablations of the implementation techniques of Section 7.

The paper attributes the practical performance of the solver to three
implementation choices: conjunctive partitioning with early quantification
(Section 7.3), the BDD variable ordering derived from the formula's
breadth-first traversal with interleaved primed/unprimed vectors (Section 7.4),
and the mark-tracking update (Figure 16).  Each benchmark toggles one of them
on the same containment instance (the e1/e2 pair of Table 2).
"""

import pytest

from conftest import FIGURE_21, write_report
from repro.analysis import Analyzer

_CONFIGS = {
    "baseline (all optimisations)": {},
    "no early quantification": {"early_quantification": False},
    "monolithic delta relation": {"monolithic_relation": True},
    "non-interleaved variable order": {"interleaved_order": False},
}

_ROWS: dict[str, str] = {}


@pytest.mark.parametrize("config_name", list(_CONFIGS))
def test_ablation_on_e1_e2(benchmark, config_name):
    analyzer = Analyzer(**_CONFIGS[config_name])
    result = benchmark.pedantic(
        lambda: analyzer.containment(FIGURE_21["e1"], FIGURE_21["e2"]),
        rounds=1,
        iterations=1,
    )
    assert result.holds  # the decision never changes, only the cost does
    _ROWS[config_name] = f"{config_name:<32} | {result.time_ms:>10.1f} ms"
    if len(_ROWS) == len(_CONFIGS):
        write_report(
            "ablation_bdd",
            ["configuration                    | e1 ⊆ e2 solve time"]
            + [_ROWS[name] for name in _CONFIGS],
        )


def test_ablation_mark_tracking(benchmark):
    # Without the four-case update of Figure 16 the solver admits "models"
    # with several start marks: a formula requiring two marked nodes becomes
    # (wrongly) satisfiable.  This documents why the update is needed.
    from repro.logic import syntax as sx
    from repro.solver.symbolic import SymbolicSolver

    formula = sx.dia(1, sx.START & sx.dia(2, sx.START))

    def run():
        sound = SymbolicSolver(formula, track_marks=True).solve()
        unsound = SymbolicSolver(formula, track_marks=False).solve()
        return sound, unsound

    sound, unsound = benchmark(run)
    assert not sound.satisfiable and unsound.satisfiable
    write_report(
        "ablation_mark_tracking",
        [
            "formula requiring two start marks: <1>(s & <2>s)",
            f"with mark tracking (Figure 16): satisfiable = {sound.satisfiable}",
            f"without mark tracking (ablation): satisfiable = {unsound.satisfiable} (unsound)",
        ],
    )
