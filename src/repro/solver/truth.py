"""ψ-types and the truth assignment of formulas at a type (Section 6.1, Figure 15).

A ψ-type (Hintikka set) is a subset ``t ⊆ Lean(ψ)`` such that:

* modal consistency: ``⟨a⟩ϕ ∈ t`` implies ``⟨a⟩⊤ ∈ t``;
* a node cannot be both a first child and a second child:
  not (``⟨1̄⟩⊤ ∈ t`` and ``⟨2̄⟩⊤ ∈ t``);
* exactly one atomic proposition belongs to ``t``;
* the start proposition ``s`` may or may not belong to ``t``.

The *truth assignment* ``ϕ ∈̇ t`` decides whether a formula of the closure is
implied by a type, by structural recursion that unfolds fixpoints; it is the
boolean function called ``status`` in the implementation section (7.1).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.core.errors import SolverLimitError
from repro.logic import syntax as sx
from repro.logic.closure import Lean
from repro.trees.focus import MODALITIES


@dataclass(frozen=True)
class TypeAssignment:
    """A ψ-type represented as the frozenset of lean formulas it contains."""

    lean: Lean
    members: frozenset[sx.Formula]

    def __contains__(self, item: sx.Formula) -> bool:
        return item in self.members

    @property
    def label(self) -> str:
        """The unique atomic proposition of the type."""
        for item in self.members:
            if item.kind == sx.KIND_PROP:
                return item.label
        raise AssertionError("a psi-type carries exactly one atomic proposition")

    @property
    def marked(self) -> bool:
        """Whether the start proposition belongs to the type."""
        return sx.START in self.members

    @property
    def attributes(self) -> tuple[str, ...]:
        """The attribute names of the type, sorted (possibly empty)."""
        return tuple(
            sorted(item.label for item in self.members if item.kind == sx.KIND_ATTR)
        )

    def has_parent_program(self, program: int) -> bool:
        """Whether ``⟨program⟩⊤`` belongs to the type."""
        return sx.dia(program, sx.TRUE) in self.members

    def bits(self) -> tuple[bool, ...]:
        """Bit-vector view in the lean order (Section 7.1)."""
        return tuple(item in self.members for item in self.lean.items)

    def __str__(self) -> str:
        from repro.logic.printer import format_formula

        parts = sorted(format_formula(item) for item in self.members)
        return "{" + ", ".join(parts) + "}"


def status_on_set(
    formula: sx.Formula, members: frozenset[sx.Formula] | TypeAssignment
) -> bool:
    """The truth assignment ``formula ∈̇ t`` of Figure 15.

    ``members`` is the set of lean formulas belonging to the type.  Formulas
    are evaluated by structural recursion; lean formulas are looked up
    directly, fixpoints are expanded once (which terminates because expansion
    always ends below a modality for guarded formulas).
    """
    if isinstance(members, TypeAssignment):
        members = members.members
    return _status(formula, members, cache={})


def _status(
    formula: sx.Formula, members: frozenset[sx.Formula], cache: dict[sx.Formula, bool]
) -> bool:
    cached = cache.get(formula)
    if cached is not None:
        return cached
    kind = formula.kind
    if kind == sx.KIND_TRUE:
        result = True
    elif kind == sx.KIND_FALSE:
        result = False
    elif kind == sx.KIND_PROP:
        result = formula in members
    elif kind == sx.KIND_NPROP:
        result = sx.prop(formula.label) not in members
    elif kind == sx.KIND_ATTR:
        if formula.label == sx.ANY_ATTRIBUTE:
            result = any(item.kind == sx.KIND_ATTR for item in members)
        else:
            result = formula in members
    elif kind == sx.KIND_NATTR:
        result = not _status(sx.attr(formula.label), members, cache)
    elif kind == sx.KIND_START:
        result = sx.START in members
    elif kind == sx.KIND_NSTART:
        result = sx.START not in members
    elif kind == sx.KIND_DIA:
        result = formula in members
    elif kind == sx.KIND_NDIA:
        result = sx.dia(formula.prog, sx.TRUE) not in members
    elif kind == sx.KIND_AND:
        result = _status(formula.left, members, cache) and _status(
            formula.right, members, cache
        )
    elif kind == sx.KIND_OR:
        result = _status(formula.left, members, cache) or _status(
            formula.right, members, cache
        )
    elif formula.is_fixpoint:
        result = _status(sx.expand_fixpoint(formula), members, cache)
    elif kind == sx.KIND_VAR:
        raise ValueError(
            f"free recursion variable {formula.label!r}; the solver only "
            "handles closed formulas"
        )
    else:  # pragma: no cover - defensive
        raise AssertionError(f"unknown formula kind {kind!r}")
    cache[formula] = result
    return result


def status_function(formula: sx.Formula) -> Callable[[frozenset[sx.Formula]], bool]:
    """A reusable ``t ↦ (formula ∈̇ t)`` function."""
    return lambda members: status_on_set(formula, members)


def psi_types(lean: Lean, limit: int = 500_000) -> Iterator[TypeAssignment]:
    """Enumerate every ψ-type of a lean (used by the explicit solver).

    The number of types is ``|Σ| · 2 · 2^(modal items)`` before applying the
    consistency constraints; ``limit`` guards against accidentally launching
    an enumeration that could never finish.
    """
    top_items = [sx.dia(program, sx.TRUE) for program in MODALITIES]
    attribute_items = [sx.attr(name) for name in lean.attributes]
    modal_items = [
        item for item in lean.items if item.kind == sx.KIND_DIA and item.left is not sx.TRUE
    ]
    optional_items = top_items + attribute_items + modal_items

    estimated = len(lean.propositions) * 2 * (2 ** len(optional_items))
    if estimated > limit:
        raise SolverLimitError(
            f"explicit psi-type enumeration would visit about {estimated} types "
            f"(limit {limit}); use the symbolic solver for this formula"
        )

    for label in lean.propositions:
        for marked in (False, True):
            for included in itertools.product((False, True), repeat=len(optional_items)):
                members = {sx.prop(label)}
                if marked:
                    members.add(sx.START)
                for item, present in zip(optional_items, included):
                    if present:
                        members.add(item)
                candidate = frozenset(members)
                if _is_consistent_type(candidate):
                    yield TypeAssignment(lean, candidate)


def _is_consistent_type(members: frozenset[sx.Formula]) -> bool:
    if sx.dia(-1, sx.TRUE) in members and sx.dia(-2, sx.TRUE) in members:
        return False
    for item in members:
        if item.kind == sx.KIND_DIA and sx.dia(item.prog, sx.TRUE) not in members:
            return False
    return True


def count_types_symbolically(lean: Lean, backend: str | None = None) -> int:
    """``|Types(ψ)|`` computed through a BDD backend (Section 7.1).

    Builds the characteristic function χ_Types of the lean on the selected
    engine (any name registered in :mod:`repro.bdd.backends`) and
    model-counts it over the unprimed variable vector.  For every lean small
    enough to enumerate this equals ``sum(1 for _ in psi_types(lean))`` —
    the conformance suite holds each backend to both counts, tying the
    explicit Figure 15 machinery to the symbolic encoding.
    """
    from repro.solver.relations import LeanEncoding

    encoding = LeanEncoding(lean, backend=backend)
    return encoding.types_constraint().count_assignments(encoding.x_names)
