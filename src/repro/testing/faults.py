"""Fault-injection harness for robustness testing: ``repro.testing.faults``.

The mechanics live in :mod:`repro.core.faults` (a stdlib-only leaf, so the
solver, cache and API façade can host injection sites without import cycles);
this module is the user-facing surface and re-exports everything.  Typical
in-process use::

    from repro.testing import faults

    faults.install(faults.FaultPlan([
        faults.FaultPoint(point="worker-crash", match="poison"),
    ]))
    try:
        ...  # code under test
    finally:
        faults.uninstall()

To reach worker processes, export the plan instead::

    os.environ[faults.FAULTS_ENV] = plan.to_env()

See the :mod:`repro.core.faults` docstring for the known failure points and
the exact firing rules (``match`` substrings, per-process ``times`` counters,
cross-process ``latch`` files).
"""

from repro.core.faults import (
    FAULT_POINTS,
    FAULTS_ENV,
    FaultPlan,
    FaultPoint,
    active,
    install,
    should_fire,
    uninstall,
)

__all__ = [
    "FAULT_POINTS",
    "FAULTS_ENV",
    "FaultPlan",
    "FaultPoint",
    "active",
    "install",
    "should_fire",
    "uninstall",
]
