"""Tests for the stylesheet auditor (:mod:`repro.xslt.rules` / ``repro.xslt``).

The fast cases audit small stylesheets against the Wikipedia schema
(article -> (meta, (text|redirect)); meta -> (title, history?); history ->
edit+; edit -> (status?, comment?); the leaves are EMPTY).  The full
acceptance run over ``examples/audit_stylesheet.xsl`` against XHTML 1.0
Strict is marked slow.
"""

import textwrap
from pathlib import Path

import pytest

from repro.api import StaticAnalyzer
from repro.core.errors import SchemaLookupError
from repro.xmltypes.dtd import parse_dtd
from repro.xslt import AuditReport, audit_stylesheet, load_stylesheet
from repro.xslt.rules import _resolve_schema

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

HEADER = '<?xml version="1.0"?>\n'
OPEN = '<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform" version="1.0">\n'
CLOSE = "</xsl:stylesheet>\n"

#: One of everything: a dead template (article/title — title only occurs in
#: meta), a shadowed template (history/edit, shadowed by the priority-3
#: edit rule), an unreachable test (redirect inside for-each select="meta"),
#: a dead select (text/title — text is EMPTY), and an aggregated coverage
#: gap for the elements no template pattern names.
SEEDED = """\
<xsl:template match="/">
  <xsl:apply-templates select="article"/>
</xsl:template>
<xsl:template match="article">
  <xsl:for-each select="meta">
    <xsl:value-of select="title"/>
    <xsl:if test="history/edit/status">ok</xsl:if>
    <xsl:if test="redirect">never</xsl:if>
  </xsl:for-each>
  <xsl:value-of select="text/title"/>
</xsl:template>
<xsl:template match="meta/title">t</xsl:template>
<xsl:template match="article/title">dead</xsl:template>
<xsl:template match="history/edit">e</xsl:template>
<xsl:template match="edit" priority="3">shadower</xsl:template>
"""


def write(tmp_path, body, name="sheet.xsl"):
    path = tmp_path / name
    path.write_text(HEADER + OPEN + textwrap.dedent(body) + CLOSE, encoding="utf-8")
    return path


@pytest.fixture(scope="module")
def analyzer() -> StaticAnalyzer:
    return StaticAnalyzer()


@pytest.fixture(scope="module")
def seeded(tmp_path_factory, analyzer) -> AuditReport:
    path = tmp_path_factory.mktemp("audit") / "seeded.xsl"
    path.write_text(HEADER + OPEN + SEEDED + CLOSE, encoding="utf-8")
    return audit_stylesheet(path, "wikipedia", analyzer=analyzer)


def by_rule(report: AuditReport) -> dict[str, list]:
    grouped: dict[str, list] = {}
    for finding in report.findings:
        grouped.setdefault(finding.rule, []).append(finding)
    return grouped


# ---------------------------------------------------------------------------
# The seeded Wikipedia audit: every rule fires exactly as designed
# ---------------------------------------------------------------------------


def test_seeded_rules_fire_exactly_once_each(seeded):
    grouped = by_rule(seeded)
    assert {rule: len(findings) for rule, findings in grouped.items()} == {
        "dead-template": 1,
        "shadowed-template": 1,
        "unreachable-branch": 1,
        "dead-select": 1,
        "coverage-gap": 1,
    }


def test_dead_template_finding(seeded):
    (finding,) = by_rule(seeded)["dead-template"]
    assert finding.severity == "error"
    assert 'match="article/title"' in finding.message
    assert finding.line == 15  # the article/title template element


def test_shadowed_template_finding(seeded):
    (finding,) = by_rule(seeded)["shadowed-template"]
    assert finding.severity == "error"
    assert 'match="history/edit"' in finding.message
    assert finding.line == 16
    (shadower,) = finding.detail["shadowed_by"]
    assert shadower["match"] == "edit" and shadower["priority"] == 3.0


def test_unreachable_branch_finding(seeded):
    (finding,) = by_rule(seeded)["unreachable-branch"]
    assert finding.severity == "warning"
    # redirect is a sibling of meta, never its child.
    assert 'test="redirect"' in finding.message
    assert (finding.line, finding.column) == (10, 5)


def test_dead_select_finding(seeded):
    (finding,) = by_rule(seeded)["dead-select"]
    assert finding.severity == "warning"
    assert 'select="text/title"' in finding.message  # text is EMPTY
    assert finding.line == 12


def test_aggregated_coverage_gap(seeded):
    (finding,) = by_rule(seeded)["coverage-gap"]
    assert finding.severity == "warning"
    assert finding.line == 1
    # meta, text, redirect, status, comment: reachable but never matched.
    assert set(finding.detail["elements"]) == {
        "comment",
        "history",
        "meta",
        "redirect",
        "status",
        "text",
    }


def test_reachable_test_and_select_stay_silent(seeded):
    messages = " ".join(finding.message for finding in seeded.findings)
    assert 'test="history/edit/status"' not in messages
    assert 'select="title"' not in messages


def test_report_metadata_and_batch_evidence(seeded):
    assert seeded.schema == "wikipedia"
    assert seeded.templates == 6
    assert seeded.branches == 6
    assert seeded.queries == {
        "dead-template": 6,
        "shadowed-template": 1,
        "dead-select": 4,
        "unreachable-branch": 2,
        "coverage-gap": 1,
    }
    assert seeded.solver_runs + seeded.cache_hits >= sum(seeded.queries.values())
    assert seeded.exit_code("error") == 1
    assert seeded.exit_code(None) == 0


def test_report_serialization_round_trip(seeded):
    document = seeded.as_dict()
    assert document["counts"]["error"] == 2
    assert document["batch"]["queries"] == sum(seeded.queries.values())
    assert len(document["findings"]) == len(seeded.findings)
    text = seeded.to_text()
    assert "dead-template" in text
    assert "2 error(s)" in text
    assert "in one batch" in text


def test_findings_are_sorted_by_location(seeded):
    keys = [(f.file, f.line, f.column, f.rule) for f in seeded.findings]
    assert keys == sorted(keys)


# ---------------------------------------------------------------------------
# Clean control and suppression behaviors
# ---------------------------------------------------------------------------


def test_clean_stylesheet_audits_clean(tmp_path, analyzer):
    path = write(
        tmp_path,
        """\
        <xsl:template match="/">
          <xsl:apply-templates select="article"/>
        </xsl:template>
        <xsl:template match="*">
          <xsl:apply-templates select="*"/>
        </xsl:template>
        <xsl:template match="meta" priority="1">
          <xsl:value-of select="title"/>
          <xsl:if test="history">h</xsl:if>
        </xsl:template>
        """,
    )
    report = audit_stylesheet(path, "wikipedia", analyzer=analyzer)
    assert report.findings == []
    # The catch-all match="*" covers every element syntactically.
    assert "coverage-gap" not in report.queries
    assert report.exit_code("warning") == 0


def test_dead_template_suppresses_its_body_and_shadow_findings(tmp_path, analyzer):
    path = write(
        tmp_path,
        """\
        <xsl:template match="article/redirect" priority="2">r</xsl:template>
        <xsl:template match="meta/redirect">
          <xsl:value-of select="nothing"/>
        </xsl:template>
        """,
    )
    report = audit_stylesheet(path, "wikipedia", analyzer=analyzer)
    grouped = by_rule(report)
    # meta/redirect is dead (redirect is article's child): one error, and
    # neither its dead select nor its shadowing by the priority-2 rule is
    # reported on top of it.
    assert len(grouped["dead-template"]) == 1
    assert "dead-select" not in grouped
    assert "shadowed-template" not in grouped


def test_empty_enclosing_scope_suppresses_nested_findings(tmp_path, analyzer):
    path = write(
        tmp_path,
        """\
        <xsl:template match="article">
          <xsl:for-each select="redirect/meta">
            <xsl:value-of select="title"/>
          </xsl:for-each>
        </xsl:template>
        """,
    )
    report = audit_stylesheet(path, "wikipedia", analyzer=analyzer)
    # Only the enclosing empty for-each select is reported; the select
    # nested under it is silenced (it is unreachable for the same reason).
    (finding,) = by_rule(report)["dead-select"]
    assert 'select="redirect/meta"' in finding.message


def test_equal_rank_is_a_conflict_not_a_shadow(tmp_path, analyzer):
    path = write(
        tmp_path,
        """\
        <xsl:template match="title">b</xsl:template>
        <xsl:template match="meta/title" priority="0">c</xsl:template>
        """,
    )
    report = audit_stylesheet(path, "wikipedia", analyzer=analyzer)
    # Every title is a meta/title under wikipedia, but the explicit
    # priority 0 ties the bare-name default: equal rank means neither
    # outranks the other, so no shadow query is even planned.
    assert "shadowed-template" not in by_rule(report)
    assert "shadowed-template" not in report.queries


# ---------------------------------------------------------------------------
# Info notes: skipped and unsupported constructs
# ---------------------------------------------------------------------------


def test_info_notes_for_unsupported_constructs(tmp_path):
    dtd = parse_dtd(
        "<!ELEMENT a (b*)><!ELEMENT b EMPTY><!ATTLIST b id CDATA #IMPLIED>",
        name="tiny",
        root="a",
    )
    path = write(
        tmp_path,
        """\
        <xsl:template name="helper">
          <xsl:value-of select="b"/>
        </xsl:template>
        <xsl:template match="id('x')">i</xsl:template>
        <xsl:template match="b/@id">
          <xsl:value-of select="whatever"/>
        </xsl:template>
        <xsl:template match="a">
          <xsl:value-of select="position()"/>
          <xsl:apply-templates select="b"/>
        </xsl:template>
        """,
    )
    report = audit_stylesheet(path, dtd, analyzer=StaticAnalyzer())
    grouped = by_rule(report)
    assert report.schema == "tiny"
    # Named template: body audited only via call sites.
    (skipped_template,) = grouped["skipped-template"]
    assert skipped_template.severity == "info"
    assert "helper" in skipped_template.message
    # id() pattern: outside the audited grammar, with the targeted message.
    (unsupported_pattern,) = grouped["unsupported-pattern"]
    assert "identity" in unsupported_pattern.message
    # A select under an attribute-matching template cannot be composed.
    (skipped_expression,) = grouped["skipped-expression"]
    assert "attribute" in skipped_expression.message
    # position() select: unsupported expression, audited templates continue.
    (unsupported_expression,) = grouped["unsupported-expression"]
    assert "position" in unsupported_expression.message
    # Info notes never gate the exit code.
    errors_or_warnings = [
        f for f in report.findings if f.severity in ("error", "warning")
    ]
    assert report.exit_code("warning") == (1 if errors_or_warnings else 0)


# ---------------------------------------------------------------------------
# Batching: the whole audit is one solve_many call
# ---------------------------------------------------------------------------


def test_audit_issues_exactly_one_solver_batch(tmp_path, monkeypatch):
    analyzer = StaticAnalyzer()
    calls: list[int] = []
    original = analyzer.solve_many

    def counting(queries, **kwargs):
        calls.append(len(list(queries)))
        return original(queries, **kwargs)

    monkeypatch.setattr(analyzer, "solve_many", counting)
    path = tmp_path / "seeded.xsl"
    path.write_text(HEADER + OPEN + SEEDED + CLOSE, encoding="utf-8")
    report = audit_stylesheet(path, "wikipedia", analyzer=analyzer)
    assert len(calls) == 1
    assert calls[0] == sum(report.queries.values())
    # Shared-schema evidence: one cached translation per (alphabet) variant,
    # far fewer than one per query.
    statistics = report.cache_statistics
    assert statistics["type_cache_entries"] < 2 * calls[0]


def test_identical_queries_are_deduplicated(tmp_path, analyzer):
    path = write(
        tmp_path,
        """\
        <xsl:template match="article/title">a</xsl:template>
        <xsl:template match="article/title" mode="other">b</xsl:template>
        """,
    )
    report = audit_stylesheet(path, "wikipedia", analyzer=analyzer)
    # Two templates, one satisfiability query: the expression is shared.
    assert report.queries["dead-template"] == 1
    assert len(by_rule(report)["dead-template"]) == 2


# ---------------------------------------------------------------------------
# Schema resolution
# ---------------------------------------------------------------------------


def test_resolve_schema_accepts_dtd_files(tmp_path):
    path = tmp_path / "tiny.dtd"
    path.write_text("<!ELEMENT a (b*)><!ELEMENT b EMPTY>", encoding="utf-8")
    dtd, name = _resolve_schema(str(path))
    assert name == "tiny"
    assert set(dtd.elements) == {"a", "b"}


def test_resolve_schema_errors():
    with pytest.raises(SchemaLookupError, match="not found"):
        _resolve_schema("/nonexistent/schema.dtd")
    with pytest.raises(SchemaLookupError):
        _resolve_schema("no-such-builtin")
    with pytest.raises(SchemaLookupError, match="unsupported"):
        _resolve_schema(1234)


# ---------------------------------------------------------------------------
# The full XHTML acceptance audit (slow)
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_xhtml_acceptance_audit():
    analyzer = StaticAnalyzer()
    stylesheet = load_stylesheet(EXAMPLES / "audit_stylesheet.xsl")
    report = audit_stylesheet(stylesheet, "xhtml-strict", analyzer=analyzer)
    grouped = by_rule(report)

    (dead,) = grouped["dead-template"]
    assert 'match="body/title"' in dead.message
    assert (dead.line, dead.column) == (63, 3)

    shadows = {f.line: f for f in grouped["shadowed-template"]}
    assert set(shadows) == {55, 7}  # tbody/tr here, head/title in the import
    assert shadows[55].file.endswith("audit_stylesheet.xsl")
    assert shadows[7].file.endswith("audit_imported.xsl")
    (by_priority,) = shadows[55].detail["shadowed_by"]
    assert by_priority["match"] == "tr"
    (by_precedence,) = shadows[7].detail["shadowed_by"]
    assert by_precedence["match"] == "head/title"
    assert by_precedence["precedence"] > 1

    (unreachable,) = grouped["unreachable-branch"]
    assert 'test="h1/p"' in unreachable.message
    assert (unreachable.line, unreachable.column) == (40, 7)

    semantic_gaps = [f for f in grouped["coverage-gap"] if "element" in f.detail]
    (li_gap,) = semantic_gaps
    assert li_gap.detail["element"] == "li"
    assert li_gap.detail["witness"] is not None

    # The covered negative case plans a query but yields no finding.
    assert not any(
        f.detail.get("element") == "caption" for f in grouped["coverage-gap"]
    )

    # Exactly one batch answered everything; the schema translations were
    # shared across it (cache statistics, the acceptance-criteria proof).
    queries = sum(report.queries.values())
    statistics = report.cache_statistics
    assert statistics["solver_runs"] + statistics["solve_cache_hits"] == queries
    assert statistics["type_cache_entries"] < 2 * queries
    assert report.exit_code("error") == 1
