"""Figure 18 — the worked containment example and its counterexample tree.

The paper walks through the run of the algorithm on
``child::c/preceding-sibling::a[b]  ⊆?  child::c[b]`` and shows that a
satisfying binary tree of depth 3 is found after computing T³, disproving the
containment.  This benchmark re-runs that containment, checks the verdict and
the shape of the counterexample, and records the number of fixpoint iterations
(the paper's T¹, T², T³ correspond to our iterations).
"""

from conftest import write_report
from repro.analysis import Analyzer
from repro.trees.unranked import serialize_tree
from repro.xpath.parser import parse_xpath
from repro.xpath.semantics import select

QUERY_1 = "child::c/preceding-sibling::a[child::b]"
QUERY_2 = "child::c[child::b]"


def test_fig18_containment_example(benchmark):
    analyzer = Analyzer()
    result = benchmark(lambda: analyzer.containment(QUERY_1, QUERY_2))
    assert not result.holds
    document = result.counterexample
    assert document is not None and document.depth() == 3
    # The counterexample genuinely separates the queries.
    selected_1 = select(parse_xpath(QUERY_1), document)
    selected_2 = select(parse_xpath(QUERY_2), document)
    assert selected_1 - selected_2
    write_report(
        "fig18_example_run",
        [
            f"query 1: {QUERY_1}",
            f"query 2: {QUERY_2}",
            f"containment holds: {result.holds} (paper: does not hold)",
            f"fixpoint iterations: {result.solver_result.statistics.iterations} (paper: 3)",
            f"lean size: {len(result.solver_result.lean)}",
            f"counterexample (depth {document.depth()}): {serialize_tree(document)}",
            f"solver time: {result.time_ms:.1f} ms (paper: 353 ms for the e1/e2 pair)",
        ],
    )
