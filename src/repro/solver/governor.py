"""Resource governance for budgeted solving: ``repro.solver.governor``.

The satisfiability algorithm is ``2^O(lean)`` (Lemma 6.7), so a service
answering untrusted queries needs every solve bounded in advance: a
pathological formula must cost a *budget*, not the process.  This module
defines the budget vocabulary and the cooperative enforcement object that the
solver and both BDD engines poll:

* :class:`Budget` — declarative limits: a wall-clock deadline, a cap on BDD
  kernel steps, a cap on fixpoint iterations, and a cap on the Lean size
  (refusing up front what Lemma 6.7 prices as hopeless).
* :class:`ResourceGovernor` — the per-solve enforcement state.  Enforcement
  is *cooperative*: the fixpoint loop of :class:`repro.solver.symbolic.
  SymbolicSolver` calls :meth:`~ResourceGovernor.poll` once per iteration,
  and both BDD engines call :meth:`~ResourceGovernor.tick` once per kernel
  frame (``ite``/``exists``/``and_exists`` recursion step), which polls the
  clock every :data:`~ResourceGovernor.POLL_STRIDE` frames.  A single fixpoint
  iteration can conjoin astronomically large BDDs, so iteration-level checks
  alone would not bound latency — the kernel ticks are what make the deadline
  bite *inside* an iteration, within milliseconds of expiry.

Exhaustion raises :class:`repro.core.errors.BudgetExceeded` with a structured
``reason`` (``"deadline"``, ``"steps"``, ``"iterations"``, ``"lean"``); the
API façade converts it into an ``unknown`` outcome (see
:class:`repro.api.AnalysisOutcome`), optionally after degrading to the
bounded explicit solver.  Reasons are backend-independent by construction:
both engines count the same notion of step (one kernel frame) against the
same governor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core import faults
from repro.core.errors import BudgetExceeded


@dataclass(frozen=True)
class Budget:
    """Declarative resource limits for one solve (``None`` = unlimited).

    ``deadline_seconds`` bounds wall-clock time, ``max_steps`` bounds BDD
    kernel frames (a machine-independent work measure), ``max_iterations``
    bounds fixpoint iterations, and ``max_lean`` refuses formulas whose Lean
    exceeds the bound before any BDD is built.  A budget is plain data and
    pickles across process boundaries, so batch workers enforce the same
    limits as the parent.
    """

    deadline_seconds: float | None = None
    max_steps: int | None = None
    max_iterations: int | None = None
    max_lean: int | None = None

    @property
    def unlimited(self) -> bool:
        return (
            self.deadline_seconds is None
            and self.max_steps is None
            and self.max_iterations is None
            and self.max_lean is None
        )

    def as_dict(self) -> dict:
        return {
            "deadline_seconds": self.deadline_seconds,
            "max_steps": self.max_steps,
            "max_iterations": self.max_iterations,
            "max_lean": self.max_lean,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Budget":
        unknown = set(payload) - {
            "deadline_seconds",
            "max_steps",
            "max_iterations",
            "max_lean",
        }
        if unknown:
            raise ValueError(f"unknown budget field(s): {sorted(unknown)}")

        def _number(name: str, converter) -> float | int | None:
            value = payload.get(name)
            if value is None:
                return None
            converted = converter(value)
            if converted <= 0:
                raise ValueError(f"budget field {name} must be positive, got {value!r}")
            return converted

        return cls(
            deadline_seconds=_number("deadline_seconds", float),
            max_steps=_number("max_steps", int),
            max_iterations=_number("max_iterations", int),
            max_lean=_number("max_lean", int),
        )

    def merged_with(self, other: "Budget | None") -> "Budget":
        """This budget with ``other``'s set fields taking precedence."""
        if other is None:
            return self
        return Budget(
            deadline_seconds=(
                other.deadline_seconds
                if other.deadline_seconds is not None
                else self.deadline_seconds
            ),
            max_steps=other.max_steps if other.max_steps is not None else self.max_steps,
            max_iterations=(
                other.max_iterations
                if other.max_iterations is not None
                else self.max_iterations
            ),
            max_lean=other.max_lean if other.max_lean is not None else self.max_lean,
        )


class ResourceGovernor:
    """Per-solve budget enforcement, polled cooperatively by solver layers.

    One governor instance governs one solver run (translation *and* fixpoint
    — the deadline covers everything between :meth:`start` and the verdict).
    The two entry points trade precision for overhead:

    * :meth:`tick` — one BDD kernel frame.  Counts a step; every
      :data:`POLL_STRIDE` steps it falls through to :meth:`poll`.  This is
      the hot path and must stay a counter bump almost always.
    * :meth:`poll` — a full checkpoint (step cap, wall clock, injected
      deadline faults).  Called by :meth:`tick` on stride boundaries and by
      the fixpoint loop once per iteration.
    """

    #: Kernel frames between wall-clock polls.  At the dict backend's
    #: ~10⁶ frames/second this bounds checkpoint latency well under a
    #: millisecond while keeping the per-frame cost to one increment and
    #: one masked comparison.
    POLL_STRIDE = 1024

    __slots__ = ("budget", "steps", "iterations", "_started", "_deadline_at")

    def __init__(self, budget: Budget):
        self.budget = budget
        self.steps = 0
        self.iterations = 0
        self._started = time.monotonic()
        self._deadline_at = (
            None
            if budget.deadline_seconds is None
            else self._started + budget.deadline_seconds
        )

    def start(self) -> None:
        """(Re)start the clock; call at the beginning of the governed solve."""
        self._started = time.monotonic()
        if self.budget.deadline_seconds is not None:
            self._deadline_at = self._started + self.budget.deadline_seconds

    @property
    def elapsed_seconds(self) -> float:
        return time.monotonic() - self._started

    def tick(self) -> None:
        """Account one kernel frame; poll the budget on stride boundaries."""
        self.steps += 1
        if not self.steps & (self.POLL_STRIDE - 1):
            self.poll()

    def poll(self) -> None:
        """Full checkpoint: raise :class:`BudgetExceeded` when out of budget."""
        budget = self.budget
        if budget.max_steps is not None and self.steps > budget.max_steps:
            raise BudgetExceeded(
                "steps",
                f"step budget exhausted: {self.steps} BDD kernel steps "
                f"> {budget.max_steps}",
                limit=budget.max_steps,
                observed=self.steps,
            )
        if self._deadline_at is not None and time.monotonic() > self._deadline_at:
            raise BudgetExceeded(
                "deadline",
                f"deadline exceeded: {self.elapsed_seconds:.3f}s "
                f"> {budget.deadline_seconds}s",
                limit=budget.deadline_seconds,
                observed=round(self.elapsed_seconds, 3),
            )
        if faults.should_fire("deadline"):
            raise BudgetExceeded(
                "deadline",
                "deadline exceeded: expiry injected by fault plan",
                limit=budget.deadline_seconds,
                observed=round(self.elapsed_seconds, 3),
            )

    def check_iteration(self, iteration: int) -> None:
        """Fixpoint-loop checkpoint: iteration cap plus a full poll."""
        self.iterations = iteration
        budget = self.budget
        if budget.max_iterations is not None and iteration > budget.max_iterations:
            raise BudgetExceeded(
                "iterations",
                f"iteration budget exhausted: {iteration} fixpoint iterations "
                f"> {budget.max_iterations}",
                limit=budget.max_iterations,
                observed=iteration,
            )
        self.poll()

    def check_lean(self, lean_size: int) -> None:
        """Refuse up front when the Lean exceeds the budget (Lemma 6.7)."""
        budget = self.budget
        if budget.max_lean is not None and lean_size > budget.max_lean:
            raise BudgetExceeded(
                "lean",
                f"lean budget exceeded before solving: {lean_size} Lean "
                f"formulas > {budget.max_lean} (the algorithm is 2^O(lean), "
                f"Lemma 6.7)",
                limit=budget.max_lean,
                observed=lean_size,
            )


def governor_for(budget: "Budget | None") -> ResourceGovernor | None:
    """A governor enforcing ``budget``, or ``None`` when nothing is limited."""
    if budget is None or budget.unlimited:
        return None
    return ResourceGovernor(budget)
